package checkpoint

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func baseCfg() Config {
	return Config{
		IterTime:         0.01,
		CheckpointTime:   0.05,
		Interval:         10,
		RestartTime:      0.2,
		MTBF:             1e9, // effectively failure-free
		IterationsNeeded: 100,
		TimeBudget:       1e6,
		Seed:             1,
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.IterTime = 0 },
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.MTBF = 0 },
		func(c *Config) { c.IterationsNeeded = 0 },
		func(c *Config) { c.TimeBudget = 0 },
		func(c *Config) { c.CheckpointTime = -1 },
	}
	for i, mut := range bad {
		cfg := baseCfg()
		mut(&cfg)
		if _, err := RunSynchronous(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := RunAsynchronous(baseCfg(), -1, 0.5); err == nil {
		t.Error("expected negative-recovery error")
	}
	if _, err := RunAsynchronous(baseCfg(), 1, 2); err == nil {
		t.Error("expected degraded-range error")
	}
}

func TestFailureFreeRun(t *testing.T) {
	cfg := baseCfg()
	res, err := RunSynchronous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.Failures != 0 {
		t.Fatalf("clean run: %+v", res)
	}
	// 100 iterations à 0.01 + 9 checkpoints à 0.05 (none after the last
	// iteration).
	want := 100*0.01 + 9*0.05
	if math.Abs(res.TotalTime-want) > 1e-9 {
		t.Errorf("TotalTime = %g, want %g", res.TotalTime, want)
	}
	if res.Checkpoints != 9 {
		t.Errorf("Checkpoints = %d, want 9", res.Checkpoints)
	}
	if e := res.Efficiency(); e <= 0.6 || e > 1 {
		t.Errorf("efficiency = %g", e)
	}
}

func TestFailuresForceRollback(t *testing.T) {
	cfg := baseCfg()
	cfg.MTBF = 0.3 // several failures during the run
	res, err := RunSynchronous(cfg)
	if err != nil && !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("expected failures at MTBF 0.3")
	}
	if res.Finished && res.RolledBackIters == 0 {
		t.Error("failures should cause rollbacks")
	}
}

func TestSynchronousStallsAtHighFailureRate(t *testing.T) {
	// The paper's Exascale argument: once the MTBF drops below the
	// checkpoint-restart cycle cost, the application "gets stuck in a
	// state of constantly being restarted".
	cfg := baseCfg()
	cfg.MTBF = 0.03 // far below one checkpoint interval's work + restart cost
	cfg.TimeBudget = 50
	_, err := RunSynchronous(cfg)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expected ErrBudgetExceeded, got %v", err)
	}
}

func TestAsynchronousSurvivesHighFailureRate(t *testing.T) {
	cfg := baseCfg()
	cfg.MTBF = 0.05
	cfg.TimeBudget = 50
	res, err := RunAsynchronous(cfg, 0.02, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("asynchronous run should finish: %+v", res)
	}
	if res.Failures == 0 {
		t.Error("expected failures during the run")
	}
}

func TestAsynchronousFasterUnderFailures(t *testing.T) {
	cfg := baseCfg()
	cfg.MTBF = 0.5
	s, serr := RunSynchronous(cfg)
	a, aerr := RunAsynchronous(cfg, 0.02, 0.5)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if serr == nil && s.Finished && a.Finished && s.TotalTime <= a.TotalTime {
		t.Errorf("async (%g) should beat checkpointed sync (%g) at MTBF 0.5", a.TotalTime, s.TotalTime)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := baseCfg()
	cfg.MTBF = 0.4
	r1, e1 := RunSynchronous(cfg)
	r2, e2 := RunSynchronous(cfg)
	if (e1 == nil) != (e2 == nil) || r1.TotalTime != r2.TotalTime || r1.Failures != r2.Failures {
		t.Error("same seed must reproduce the run")
	}
}

// Property: with failures, total time ≥ useful time, and the asynchronous
// run never loses progress (UsefulTime equals the full work when finished).
func TestPropertyTimeAccounting(t *testing.T) {
	f := func(seed int64, mtbfScale uint8) bool {
		cfg := baseCfg()
		cfg.Seed = seed
		cfg.MTBF = 0.05 + float64(mtbfScale)/64
		cfg.TimeBudget = 1000
		s, serr := RunSynchronous(cfg)
		if serr == nil {
			if !s.Finished || s.TotalTime < s.UsefulTime-1e-9 {
				return false
			}
		}
		a, aerr := RunAsynchronous(cfg, 0.05, 0.5)
		if aerr == nil && a.Finished {
			if a.TotalTime < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
