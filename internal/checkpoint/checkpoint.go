package checkpoint

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config describes the checkpointed synchronous execution.
type Config struct {
	// IterTime is the simulated time per solver iteration (seconds).
	IterTime float64
	// CheckpointTime is the cost of writing one checkpoint; taken every
	// Interval iterations.
	CheckpointTime float64
	Interval       int
	// RestartTime is the cost of detecting a failure, restoring the last
	// checkpoint and restarting.
	RestartTime float64
	// MTBF is the mean time between failures of the whole system; failures
	// arrive as a Poisson process (exponential gaps).
	MTBF float64
	// IterationsNeeded is how many successful consecutive iterations the
	// solve requires. A failure destroys progress back to the last
	// checkpoint.
	IterationsNeeded int
	// TimeBudget bounds the simulation; ErrBudgetExceeded is returned if
	// the solve does not finish in this much simulated time.
	TimeBudget float64
	Seed       int64
}

func (c Config) validate() error {
	switch {
	case c.IterTime <= 0:
		return fmt.Errorf("checkpoint: IterTime must be positive, have %g", c.IterTime)
	case c.Interval <= 0:
		return fmt.Errorf("checkpoint: Interval must be positive, have %d", c.Interval)
	case c.MTBF <= 0:
		return fmt.Errorf("checkpoint: MTBF must be positive, have %g", c.MTBF)
	case c.IterationsNeeded <= 0:
		return fmt.Errorf("checkpoint: IterationsNeeded must be positive, have %d", c.IterationsNeeded)
	case c.TimeBudget <= 0:
		return fmt.Errorf("checkpoint: TimeBudget must be positive, have %g", c.TimeBudget)
	case c.CheckpointTime < 0 || c.RestartTime < 0:
		return fmt.Errorf("checkpoint: negative overhead times")
	}
	return nil
}

// Result reports one simulated run.
type Result struct {
	Finished bool
	// TotalTime is the simulated wall time used (= TimeBudget if not
	// finished).
	TotalTime float64
	// UsefulTime is time spent on iterations that survived to the end.
	UsefulTime float64
	// Failures, Checkpoints and RolledBackIters count the events.
	Failures        int
	Checkpoints     int
	RolledBackIters int
}

// Efficiency returns UsefulTime/TotalTime (0 if no time passed).
func (r Result) Efficiency() float64 {
	if r.TotalTime == 0 {
		return 0
	}
	return r.UsefulTime / r.TotalTime
}

// ErrBudgetExceeded reports a run that did not finish within TimeBudget.
var ErrBudgetExceeded = errors.New("checkpoint: time budget exceeded before completion")

// RunSynchronous simulates the checkpoint/rollback execution of a
// synchronous solver under the failure process.
func RunSynchronous(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextFailure := expGap(rng, cfg.MTBF)

	var res Result
	now := 0.0
	done := 0         // iterations completed and checkpointed or in progress
	checkpointed := 0 // iterations safely persisted
	sinceCkpt := 0

	for done < cfg.IterationsNeeded {
		if now >= cfg.TimeBudget {
			res.TotalTime = cfg.TimeBudget
			return res, ErrBudgetExceeded
		}
		stepEnd := now + cfg.IterTime
		if nextFailure < stepEnd {
			// Failure mid-iteration: roll back to the last checkpoint.
			res.Failures++
			res.RolledBackIters += done - checkpointed
			done = checkpointed
			sinceCkpt = 0
			now = nextFailure + cfg.RestartTime
			nextFailure = now + expGap(rng, cfg.MTBF)
			continue
		}
		now = stepEnd
		done++
		sinceCkpt++
		if sinceCkpt == cfg.Interval && done < cfg.IterationsNeeded {
			// Write a checkpoint; a failure during the write loses the
			// un-checkpointed window.
			ckptEnd := now + cfg.CheckpointTime
			if nextFailure < ckptEnd {
				res.Failures++
				res.RolledBackIters += done - checkpointed
				done = checkpointed
				sinceCkpt = 0
				now = nextFailure + cfg.RestartTime
				nextFailure = now + expGap(rng, cfg.MTBF)
				continue
			}
			now = ckptEnd
			checkpointed = done
			sinceCkpt = 0
			res.Checkpoints++
		}
	}
	res.Finished = true
	res.TotalTime = now
	res.UsefulTime = float64(cfg.IterationsNeeded) * cfg.IterTime
	return res, nil
}

// RunAsynchronous simulates the asynchronous execution under the same
// failure process: no checkpoints and no rollback — each failure only
// costs the recovery (reassignment) delay, during which convergence
// continues on the surviving components at reduced efficiency.
//
// recoveryTime is the reassignment delay per failure; degraded is the
// progress fraction contributed during an outage (e.g. 0.5: the surviving
// 75 % of cores still move the iteration forward at half effectiveness —
// paper Figure 10 shows convergence merely slowing during the outage).
func RunAsynchronous(cfg Config, recoveryTime, degraded float64) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if degraded < 0 || degraded > 1 {
		return Result{}, fmt.Errorf("checkpoint: degraded fraction %g outside [0,1]", degraded)
	}
	if recoveryTime < 0 {
		return Result{}, fmt.Errorf("checkpoint: negative recovery time")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextFailure := expGap(rng, cfg.MTBF)

	var res Result
	now := 0.0
	progress := 0.0 // fractional iterations completed
	target := float64(cfg.IterationsNeeded)

	for progress < target {
		if now >= cfg.TimeBudget {
			res.TotalTime = cfg.TimeBudget
			return res, ErrBudgetExceeded
		}
		if nextFailure <= now {
			// Outage: convergence continues at the degraded rate while the
			// system reassigns the dead blocks; no progress is lost.
			res.Failures++
			progress += degraded * recoveryTime / cfg.IterTime
			now = math.Max(now, nextFailure) + recoveryTime
			nextFailure = now + expGap(rng, cfg.MTBF)
			continue
		}
		// Advance to the next failure or to completion, whichever first.
		need := (target - progress) * cfg.IterTime
		if now+need <= nextFailure {
			now += need
			progress = target
			break
		}
		progress += (nextFailure - now) / cfg.IterTime
		now = nextFailure
	}
	res.Finished = progress >= target
	res.TotalTime = now
	res.UsefulTime = target * cfg.IterTime
	return res, nil
}

func expGap(rng *rand.Rand, mtbf float64) float64 {
	return rng.ExpFloat64() * mtbf
}
