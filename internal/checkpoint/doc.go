// Package checkpoint implements the classical fault-tolerance strategy the
// paper argues will break down at Exascale (§4.5): periodic checkpointing
// with rollback restart for *synchronous* iterative solvers.
//
// "For most synchronized iterative solvers hardware failure is crucial,
// resulting in the breakdown of the algorithm. … algorithms will no longer
// be able to rely on checkpointing to cope with faults in the Exascale
// era. This stems from the fact, that the time for checkpointing and
// restarting will exceed the mean time of failure of the full system."
//
// The package provides a simulated-time harness: a synchronous sweep-based
// solver runs under a failure process with a given mean time between
// failures (MTBF); every failure forces a rollback to the last checkpoint
// plus a restart penalty. The asynchronous comparison (no checkpoints, no
// rollback — dead blocks are simply reassigned) is modeled alongside, so
// experiments.ExascaleArgument can sweep the MTBF and reproduce the
// paper's qualitative crossover: beyond some failure rate the
// checkpointed synchronous solver stops making progress while the
// asynchronous method still converges.
package checkpoint
