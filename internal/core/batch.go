package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// BatchOptions configures SolveBatch on top of Options.
type BatchOptions struct {
	// Workers is the number of systems solved concurrently. Default 1,
	// which runs the systems strictly in order 0..N-1 on the calling
	// goroutine — by construction exactly the loop a caller would write
	// around per-system solves, which the batch-equivalence conformance
	// test pins down bitwise.
	Workers int
	// ShardsPerSystem is the ShardOptions.Shards each system's solve runs
	// with. Default 1: each system executes the sharded substrate's
	// sequential one-shard path, which is deterministic for a fixed seed
	// and bit-identical to the goroutine engine at Workers=1. Values > 1
	// spend intra-system parallelism on top of the cross-system Workers.
	ShardsPerSystem int
}

func (bo BatchOptions) withDefaults() BatchOptions {
	if bo.Workers == 0 {
		bo.Workers = 1
	}
	if bo.ShardsPerSystem == 0 {
		bo.ShardsPerSystem = 1
	}
	return bo
}

// SystemResult reports one system of a batched solve.
type SystemResult struct {
	// Index is the system's position in the request, [0, N).
	Index int
	// X is the system's final iterate — a view into the batch's contiguous
	// backing array (BatchResult.Iterates), not a private copy.
	X                []float64
	GlobalIterations int
	Residual         float64
	Converged        bool
	// Err is the system's solve error (divergence, cancellation), nil for
	// a clean run. A system that merely exhausted its budget has Err nil
	// and Converged false, matching the SolveWithPlan contract.
	Err error
}

// BatchResult reports a batched solve over N systems sharing one plan.
type BatchResult struct {
	// Systems holds one entry per input system, in input order, including
	// the ones that failed — partial failure is per-system, never
	// all-or-nothing.
	Systems []SystemResult
	// Iterates is the contiguous N×n backing array of all the systems'
	// final iterates; Systems[j].X is the row view Iterates[j*n:(j+1)*n].
	// Batch consumers stream this as one buffer instead of N allocations.
	Iterates []float64
	// Converged counts systems that reached tolerance; Failed counts
	// systems with a non-nil Err.
	Converged, Failed int
	// TotalIterations sums the systems' global iteration counts.
	TotalIterations int
}

// BatchSeed derives the scheduler seed of system j of a batch whose
// resolved Options.Seed is base: a splitmix64-style scramble, never zero,
// so every system of a batch runs a distinct deterministic stream. It is
// exported so a batched system's solve can be reproduced standalone —
// SolveWithPlan with Seed: BatchSeed(base, j) — which the batch-equivalence
// conformance test exploits.
func BatchSeed(base int64, j int) int64 {
	z := uint64(base) ^ (uint64(j)+1)*0x9E3779B97F4A7C15
	z ^= z >> 31
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return int64(z | 1)
}

// SolveBatch solves N small systems that share one structure — one plan,
// N right-hand sides — as a single run: the multi-user analogue of GPU
// batched kernels (thousands of tiny independent subdomain problems
// resident at once), applied across requests instead of within one.
//
// Each system j runs through the sharded executor (SolveSharded) with its
// own derived seed BatchSeed(seed, j); systems are distributed over
// BatchOptions.Workers. Convergence is tracked per system and failures are
// per-system too: one diverging RHS marks its SystemResult.Err and the
// rest of the batch completes normally. The batch-level error is reserved
// for structural problems (mismatched RHS lengths, zero systems, invalid
// options) and cancellation.
//
// opt follows the SolveWithPlan contract. InitialGuess must be nil (the
// systems share structure, not state), and Record/Replay are not supported
// — record or replay a single system's solve through SolveWithPlan with
// its BatchSeed instead.
func SolveBatch(p *Plan, rhs [][]float64, opt Options, bo BatchOptions) (BatchResult, error) {
	if len(rhs) == 0 {
		return BatchResult{}, fmt.Errorf("core: SolveBatch needs at least one system, have 0")
	}
	if opt.InitialGuess != nil {
		return BatchResult{}, fmt.Errorf("core: SolveBatch does not accept InitialGuess (systems share structure, not state)")
	}
	if opt.MomentumGuess != nil {
		return BatchResult{}, fmt.Errorf("core: SolveBatch does not accept MomentumGuess (systems share structure, not state)")
	}
	if opt.Record != nil || opt.Replay != nil {
		return BatchResult{}, fmt.Errorf("core: SolveBatch does not record or replay schedules; use SolveWithPlan with the system's BatchSeed")
	}
	n := p.a.Rows
	for j, b := range rhs {
		if len(b) != n {
			return BatchResult{}, fmt.Errorf("core: batch system %d: rhs length %d does not match matrix dimension %d", j, len(b), n)
		}
	}
	bo = bo.withDefaults()
	if bo.Workers < 1 {
		return BatchResult{}, fmt.Errorf("core: BatchOptions.Workers must be positive, have %d", bo.Workers)
	}
	// Resolve the seed once at the batch level so the per-system streams
	// are fixed before any system runs, regardless of worker interleaving.
	opt = opt.withDefaults()
	base := opt.Seed

	N := len(rhs)
	res := BatchResult{
		Systems:  make([]SystemResult, N),
		Iterates: make([]float64, N*n),
	}

	runSystem := func(j int) {
		sr := &res.Systems[j]
		sr.Index = j
		sr.X = res.Iterates[j*n : (j+1)*n : (j+1)*n]
		if err := ctxErr(opt.Ctx, 0); err != nil {
			sr.Err = err
			return
		}
		optj := opt
		optj.Seed = BatchSeed(base, j)
		r, err := SolveSharded(p, rhs[j], optj, ShardOptions{
			Shards:     bo.ShardsPerSystem,
			Sequential: bo.ShardsPerSystem == 1,
		})
		if r.X != nil {
			copy(sr.X, r.X)
		}
		sr.GlobalIterations = r.GlobalIterations
		sr.Residual = r.Residual
		sr.Converged = r.Converged
		sr.Err = err
	}

	if bo.Workers == 1 {
		// Strictly sequential in input order on the calling goroutine —
		// the bitwise anchor of the batch-equivalence conformance test.
		for j := 0; j < N; j++ {
			runSystem(j)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		workers := bo.Workers
		if workers > N {
			workers = N
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= N {
						return
					}
					runSystem(j)
				}
			}()
		}
		wg.Wait()
	}

	for j := range res.Systems {
		sr := &res.Systems[j]
		if sr.Converged {
			res.Converged++
		}
		if sr.Err != nil {
			res.Failed++
		}
		res.TotalIterations += sr.GlobalIterations
	}
	if err := ctxErr(opt.Ctx, 0); err != nil {
		return res, err
	}
	return res, nil
}
