package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/mats"
)

func TestSolveWithPlanBitIdenticalToSolve(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.RecordHistory = true

	cold, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, opt.BlockSize, false)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ { // plan reuse must not drift
		warm, err := SolveWithPlan(plan, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		if warm.GlobalIterations != cold.GlobalIterations {
			t.Fatalf("run %d: iterations %d != %d", run, warm.GlobalIterations, cold.GlobalIterations)
		}
		for i := range cold.X {
			if warm.X[i] != cold.X[i] {
				t.Fatalf("run %d: x[%d] = %v != %v (not bit-identical)", run, i, warm.X[i], cold.X[i])
			}
		}
	}
}

func TestSolveWithPlanExactLocal(t *testing.T) {
	a := mats.Poisson2D(15, 15)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.ExactLocal = true
	opt.LocalIters = 0

	plan, err := NewPlan(a, opt.BlockSize, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveWithPlan(plan, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g", res.Residual)
	}
	checkSolvesOnes(t, "exact plan", res.X, 1e-8)
}

func TestSolveWithPlanMismatch(t *testing.T) {
	a := mats.Poisson2D(10, 10)
	b := onesRHS(a)
	plan, err := NewPlan(a, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := defaultOpts() // BlockSize 64 != 32
	if _, err := SolveWithPlan(plan, b, opt); err == nil {
		t.Fatal("expected BlockSize mismatch error")
	}
	opt.BlockSize = 0 // adopt the plan's block size
	opt.ExactLocal = true
	if _, err := SolveWithPlan(plan, b, opt); err == nil {
		t.Fatal("expected ExactLocal mismatch error")
	}
}

func TestPlanMemoryBytes(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	lean, err := NewPlan(a, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	fat, err := NewPlan(a, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	if lean.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes = %d, want positive", lean.MemoryBytes())
	}
	if fat.MemoryBytes() <= lean.MemoryBytes() {
		t.Fatalf("exact-local plan (%d B) should outweigh plain plan (%d B)",
			fat.MemoryBytes(), lean.MemoryBytes())
	}
}

func TestSolveCanceledBeforeStart(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := defaultOpts()
	opt.Ctx = ctx
	for _, engine := range []EngineKind{EngineSimulated, EngineGoroutine} {
		opt.Engine = engine
		_, err := Solve(a, b, opt)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", engine, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled in chain", engine, err)
		}
	}
}

func TestSolveCanceledMidIteration(t *testing.T) {
	a := mats.Poisson2D(30, 30)
	b := onesRHS(a)
	for _, engine := range []EngineKind{EngineSimulated, EngineGoroutine} {
		ctx, cancel := context.WithCancel(context.Background())
		opt := defaultOpts()
		opt.Engine = engine
		opt.Tolerance = 0 // run the full budget unless canceled
		opt.MaxGlobalIters = 100000
		opt.Ctx = ctx
		const stopAt = 3
		opt.AfterIteration = func(iter int, x VectorAccess) {
			if iter == stopAt {
				cancel()
			}
		}
		res, err := Solve(a, b, opt)
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", engine, err)
		}
		// Cancellation is observed at the next iteration boundary.
		if res.GlobalIterations != stopAt {
			t.Fatalf("%v: stopped after %d iterations, want %d", engine, res.GlobalIterations, stopAt)
		}
		if len(res.X) != a.Rows {
			t.Fatalf("%v: partial iterate missing (len %d)", engine, len(res.X))
		}
	}
}

func TestSolveDeadlineExceeded(t *testing.T) {
	a := mats.Poisson2D(30, 30)
	b := onesRHS(a)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	opt := defaultOpts()
	opt.Tolerance = 0
	opt.MaxGlobalIters = 1 << 30
	opt.Ctx = ctx
	_, err := Solve(a, b, opt)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

func TestFreeRunningCanceled(t *testing.T) {
	a := mats.Poisson2D(30, 30)
	b := onesRHS(a)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := SolveFreeRunning(a, b, FreeRunningOptions{
		BlockSize:       32,
		LocalIters:      5,
		MaxBlockUpdates: 1 << 40,
		Tolerance:       1e-300, // unreachable: only the context can stop it
		Workers:         4,
		Ctx:             ctx,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
