package core

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
	"repro/internal/vecmath"
)

// raceSeed derives the per-component race RNG stream from the engine seed.
// Replay re-derives it from the schedule's recorded effective seed, which
// is what makes a simulated-engine replay reproduce the original coin
// flips exactly.
func raceSeed(seed int64) int64 { return seed ^ 0x5DEECE66D }

// simMeta describes a simulated-engine capture. The simulated engine is a
// single sequential executor, so it records Worker 0 / Workers 1 — a
// free-running replay of such a schedule degenerates to one worker
// executing the events in order, which is exactly the recorded semantics.
func simMeta(opt Options, nb int) sched.Meta {
	return barrierMeta("simulated", nb, 1, opt)
}

// simEvent encodes one simulated-engine block execution.
func simEvent(iter, block int, opt Options, stale bool) sched.Event {
	e := sched.Event{Epoch: int32(iter), Block: int32(block), Sweeps: int32(opt.LocalIters)}
	if opt.ExactLocal {
		e.Sweeps = 0
	}
	if stale {
		e.Shift = 1
	}
	return e
}

// replaySimulated drives the simulated engine along a captured schedule.
//
// For schedules captured by the barrier engines (simulated, goroutine) the
// events group into global iterations by their Epoch field; a
// simulated-engine capture additionally restores the stale masks and the
// race-RNG stream, so the replay is bit-identical to the original run
// (same x, same residual history).
//
// A free-running capture has no global iterations — its epochs are
// worker-local sweep rounds — so the events replay as one flat sequence
// against the live iterate (each block reads everything its predecessors
// wrote: the sequential canonical execution of that schedule), with
// pseudo-iterations of numBlocks events for residual bookkeeping.
func replaySimulated(p *Plan, b []float64, opt Options) (Result, error) {
	a, sp, part, views := p.a, p.sp, p.part, p.views
	s := opt.Replay
	nb := part.NumBlocks()
	if err := s.Validate(nb); err != nil {
		return Result{}, err
	}
	flat := s.Meta.Engine == "freerunning"
	if err := checkReplaySweeps(s, p); err != nil {
		return Result{}, err
	}
	omega := s.Meta.Omega
	if omega == 0 {
		omega = opt.Omega
	}
	beta := replayBeta(s.Meta, opt.Beta)

	n := a.Rows
	x := make([]float64, n)
	if opt.InitialGuess != nil {
		copy(x, opt.InitialGuess)
	}
	roundIterate(opt.Precision, x)
	is := p.getIterScratch()
	defer p.putIterScratch(is)
	iterSnap := is.snap
	raceRNG := rand.New(rand.NewSource(raceSeed(s.Meta.Seed)))
	mix := &mixReader{rng: raceRNG}
	scr := p.getKernelScratch()
	defer p.putKernelScratch(scr)
	kern := p.kernelFor(opt.referenceKernel)
	rule := newUpdateRule(opt.Method, omega, beta, opt.Precision, x, opt.MomentumGuess)
	// Replays keep the exact per-iteration residual (ResidualEvery is a
	// live-solve optimization; a replayed history must be bit-faithful).
	rs := &residualState{scratch: is.resid}
	factors := p.factors
	res := Result{NumBlocks: nb}
	em := opt.Metrics.engine("simulated")
	var (
		writer     valueWriter = iterateWriter(opt.Precision, sliceWriter(x))
		liveReader valueReader = sliceReader(x)
		snapReader valueReader = sliceReader(iterSnap)
	)
	if opt.Record != nil {
		opt.Record.SetMeta(s.Meta)
	}

	events := s.Events
	iter := 0
	for len(events) > 0 {
		iter++
		if err := ctxErr(opt.Ctx, iter-1); err != nil {
			res.X = x
			return res, err
		}
		// One replayed iteration: the recorded epoch's events, or a flat
		// chunk of numBlocks events for free-running captures.
		var chunk []sched.Event
		if flat {
			k := nb
			if k > len(events) {
				k = len(events)
			}
			chunk, events = events[:k], events[k:]
		} else {
			epoch := events[0].Epoch
			k := 0
			for k < len(events) && events[k].Epoch == epoch {
				k++
			}
			chunk, events = events[:k], events[k:]
		}
		vecmath.Copy(iterSnap, x)
		for _, e := range chunk {
			// Per-event cancellation check, mirroring the live engine's
			// per-block granularity.
			if err := ctxErr(opt.Ctx, iter-1); err != nil {
				res.X = x
				return res, err
			}
			bi := int(e.Block)
			var offRead valueReader
			switch {
			case flat:
				// Sequential canonical semantics: read the live iterate.
				offRead = liveReader
			case e.Shift > 0:
				em.addStaleRead()
				offRead = snapReader
			default:
				mix.live, mix.snap = x, iterSnap
				offRead = mix
			}
			if e.Sweeps == 0 {
				if err := runBlockExact(a, b, &views[bi], factors.lu[bi], offRead, writer, scr); err != nil {
					res.X = x
					return res, err
				}
			} else {
				kern(a, sp, b, &views[bi], int(e.Sweeps), rule, offRead, offRead, writer, scr)
			}
			em.addBlockSweep()
			em.addReplayEvent()
			if opt.Record != nil {
				opt.Record.Append(e)
			}
		}
		em.addIteration()
		if opt.AfterIteration != nil {
			opt.AfterIteration(iter, iterateAccess(opt.Precision, sliceAccess(x)))
		}
		stop, err := checkResidual(a, b, x, opt, &res, iter, 0, rs)
		if err != nil {
			res.X = x
			return res, err
		}
		if stop {
			break
		}
	}
	res.X = x
	res.Momentum = rule.prev
	if !opt.RecordHistory && opt.Tolerance == 0 {
		res.Residual = residualInto(is.resid, a, b, x)
	}
	return res, nil
}

// errReplayEngine reports a schedule handed to an engine that cannot
// honor its structure.
func errReplayEngine(captured, replaying string) error {
	return fmt.Errorf("core: cannot replay a %q capture through the %s engine (no global iterations to group by); use the simulated engine or ReplayFreeRunning", captured, replaying)
}

// checkReplaySweeps verifies that the schedule's local-solve kinds match
// the plan: Sweeps == 0 events are exact local solves and need the plan's
// LU factors; Sweeps > 0 events need the Jacobi path.
func checkReplaySweeps(s *sched.Schedule, p *Plan) error {
	for i, e := range s.Events {
		if e.Sweeps == 0 && p.factors == nil {
			return fmt.Errorf("core: replay event %d is an exact local solve but the plan has no LU factors (build the plan with exactLocal)", i)
		}
		if e.Sweeps < 0 {
			return fmt.Errorf("core: replay event %d has negative sweep count %d", i, e.Sweeps)
		}
	}
	return nil
}
