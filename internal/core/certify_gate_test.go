package core

import (
	"errors"
	"testing"

	"repro/internal/certify"
	"repro/internal/mats"
)

// TestCertifyGateEnforceRejectsS1RMT3M1 is the divergence regression the
// certifier exists for: on the paper's s1rmt3m1-analog (SPD-violating,
// non-dominant, ρ(B) ≈ 2.66) ModeEnforce must refuse admission before a
// single iteration, with the certificate attached; ModeWarn must let the
// solve run and merely attach the same verdict.
func TestCertifyGateEnforceRejectsS1RMT3M1(t *testing.T) {
	a := mats.S1RMT3M1(160)
	b := onesRHS(a)

	res, err := Solve(a, b, Options{
		BlockSize: 16, LocalIters: 1, MaxGlobalIters: 40,
		Tolerance: 1e-8, Seed: 3, Certify: certify.ModeEnforce,
	})
	if !errors.Is(err, certify.ErrDivergent) {
		t.Fatalf("enforce: err = %v, want wrapped certify.ErrDivergent", err)
	}
	if res.Certificate == nil || res.Certificate.Verdict != certify.VerdictDiverges {
		t.Fatalf("enforce: rejection did not carry a diverges certificate: %+v", res.Certificate)
	}
	if res.GlobalIterations != 0 {
		t.Fatalf("enforce: %d iterations ran on a refused admission", res.GlobalIterations)
	}

	res, err = Solve(a, b, Options{
		BlockSize: 16, LocalIters: 1, MaxGlobalIters: 40,
		Tolerance: 1e-8, Seed: 3, Certify: certify.ModeWarn,
	})
	if err != nil && !errors.Is(err, ErrDiverged) {
		t.Fatalf("warn: err = %v, want nil or wrapped ErrDiverged", err)
	}
	if res.Converged {
		t.Fatal("warn: s1rmt3m1-analog converged — matrix generator broken")
	}
	if res.Certificate == nil || res.Certificate.Verdict != certify.VerdictDiverges {
		t.Fatalf("warn: certificate missing or wrong verdict: %+v", res.Certificate)
	}
}

// TestCertifyGateEnforceAdmitsConvergent: enforce must be invisible on a
// healthy system — the solve runs, converges, and echoes its certificate.
func TestCertifyGateEnforceAdmitsConvergent(t *testing.T) {
	a := mats.Poisson2D(12, 8)
	b := onesRHS(a)
	res, err := Solve(a, b, Options{
		BlockSize: 16, LocalIters: 2, MaxGlobalIters: 50000,
		Tolerance: 1e-8, Seed: 3, Certify: certify.ModeEnforce,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("enforce blocked or broke a convergent solve (residual %g)", res.Residual)
	}
	if res.Certificate == nil || res.Certificate.Verdict != certify.VerdictConverges {
		t.Fatalf("certificate missing or wrong verdict: %+v", res.Certificate)
	}
	if res.Certificate.PredictedIters <= 0 {
		t.Fatalf("converges certificate without a predicted budget: %+v", res.Certificate)
	}
	off, err := Solve(a, b, Options{
		BlockSize: 16, LocalIters: 2, MaxGlobalIters: 50000,
		Tolerance: 1e-8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if off.Certificate != nil {
		t.Fatal("ModeOff solve attached a certificate")
	}
	if off.GlobalIterations != res.GlobalIterations {
		t.Fatalf("certification changed the iteration path: %d vs %d iters",
			res.GlobalIterations, off.GlobalIterations)
	}
}
