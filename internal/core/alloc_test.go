package core

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
)

// mallocsForSolve runs one simulated-engine solve on the warm plan and
// returns the number of heap objects it allocated.
func mallocsForSolve(t *testing.T, p *Plan, b []float64, iters int) uint64 {
	t.Helper()
	opt := Options{
		BlockSize:      p.BlockSize(),
		LocalIters:     3,
		MaxGlobalIters: iters,
		Tolerance:      1e-300, // unreachable: every iteration runs the exact residual check
		Seed:           5,
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := SolveWithPlan(p, b, opt)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalIterations != iters {
		t.Fatalf("expected %d iterations, got %d", iters, res.GlobalIterations)
	}
	return after.Mallocs - before.Mallocs
}

// TestSteadyStateZeroAllocsPerIteration pins the zero-allocation property
// of warm-plan solves: with the kernel and iteration scratch pooled in the
// Plan, a global iteration — schedule order, stale mask, block sweeps and
// the exact residual check — performs no heap allocation. The test compares
// the total allocations of a 2-iteration and a 202-iteration solve on the
// same warm plan: any per-iteration allocation would separate them by at
// least 200.
func TestSteadyStateZeroAllocsPerIteration(t *testing.T) {
	a := mats.Trefethen(300)
	p, err := NewPlan(a, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	// GC off so the scratch pools cannot be drained mid-measurement; the
	// minimum of three runs filters unrelated background-runtime mallocs.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	mallocsForSolve(t, p, b, 2) // warm the pools
	minOf := func(iters int) uint64 {
		m := mallocsForSolve(t, p, b, iters)
		for i := 0; i < 2; i++ {
			if v := mallocsForSolve(t, p, b, iters); v < m {
				m = v
			}
		}
		return m
	}
	short := minOf(2)
	long := minOf(202)
	if long != short {
		t.Fatalf("steady-state iterations allocate: %d mallocs at 2 iters vs %d at 202 iters (%+d over 200 iterations)",
			short, long, int64(long)-int64(short))
	}
}

// TestKernelZeroAllocs pins the block kernels themselves: with scratch
// provided, neither implementation allocates.
func TestKernelZeroAllocs(t *testing.T) {
	a := mats.Trefethen(128)
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		t.Fatal(err)
	}
	part := sparse.NewBlockPartition(a.Rows, 32)
	views, _ := buildBlockViews(a, part)
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	scr := newKernelScratch(32)
	var (
		read  valueReader = sliceReader(x)
		write valueWriter = sliceWriter(x)
	)
	rule := &updateRule{omega: 1}
	for name, kern := range map[string]kernelFunc{
		"fused":     runBlockKernel,
		"reference": runBlockKernelReference,
	} {
		if n := testing.AllocsPerRun(100, func() {
			kern(a, sp, b, &views[1], 5, rule, read, read, write, scr)
		}); n != 0 {
			t.Errorf("%s kernel allocates %v objects per run", name, n)
		}
	}
}
