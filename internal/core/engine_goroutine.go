package core

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// atomicFloat accumulates float64 contributions from concurrent workers
// (the per-iteration block-update norm). The summation order is whatever
// the interleaving produces — acceptable for the incremental residual
// estimate, which only gates when an exact check runs.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) reset() { f.bits.Store(0) }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// solveGoroutine runs the truly asynchronous engine: every global iteration
// dispatches all blocks (in a seeded chaotic order) to a pool of workers —
// one per simulated multiprocessor — that read and write the shared iterate
// through per-component atomics with no further coordination. Concurrent
// blocks observe each other's partial progress nondeterministically,
// reproducing the chaotic interleavings of CUDA stream execution; only the
// end of the global iteration is a barrier, so the iteration count and the
// residual history remain well defined (the paper's measurement unit).
//
// With Options.Record set, each worker appends one sched.Event per block
// it executes; the slot reservation in the recorder's ring is the commit
// order, so the captured stream is a total order of the run's block
// executions. With Options.Replay set, the engine replays such a capture
// deterministically: the recorded events are dispatched through the same
// worker pool one at a time, the barrier after each dispatch being the
// injected yield point that serializes the execution — every block then
// reads exactly what the recorded predecessors wrote, so any two replays
// of one schedule are bit-identical.
func solveGoroutine(p *Plan, b []float64, opt Options) (Result, error) {
	a, sp, part, views := p.a, p.sp, p.part, p.views

	n := a.Rows
	start := make([]float64, n)
	if opt.InitialGuess != nil {
		copy(start, opt.InitialGuess)
	}
	roundIterate(opt.Precision, start)
	x := NewAtomicVector(start)
	writer := iterateWriter(opt.Precision, valueWriter(x))
	nb := part.NumBlocks()
	res := Result{NumBlocks: nb}

	omega := opt.Omega
	beta := opt.Beta
	factors := p.factors
	workers := opt.Workers
	if workers > nb {
		workers = nb
	}
	if workers < 1 {
		workers = 1
	}

	// Replay: group the captured events into global iterations up front.
	var replayEpochs [][]sched.Event
	if opt.Replay != nil {
		s := opt.Replay
		if err := s.Validate(nb); err != nil {
			return Result{}, err
		}
		if s.Meta.Engine == "freerunning" {
			// A free-running capture has no global iterations to group by;
			// replay it through ReplayFreeRunning or the simulated engine.
			return Result{}, errReplayEngine(s.Meta.Engine, "goroutine")
		}
		if err := checkReplaySweeps(s, p); err != nil {
			return Result{}, err
		}
		if s.Meta.Omega != 0 {
			omega = s.Meta.Omega
		}
		beta = replayBeta(s.Meta, opt.Beta)
		for i := 0; i < len(s.Events); {
			epoch := s.Events[i].Epoch
			j := i
			for j < len(s.Events) && s.Events[j].Epoch == epoch {
				j++
			}
			replayEpochs = append(replayEpochs, s.Events[i:j])
			i = j
		}
	}
	if opt.Record != nil {
		opt.Record.SetMeta(barrierMeta("goroutine", nb, workers, opt))
	}

	em := opt.Metrics.engine("goroutine")
	kern := p.kernelFor(opt.referenceKernel)
	rule := newUpdateRule(opt.Method, omega, beta, opt.Precision, start, opt.MomentumGuess)
	var iterDelta atomicFloat // Σ‖Δx_J‖₂² of the current global iteration
	// Persistent worker pool fed one global iteration at a time. In replay
	// mode the same pool is fed one *event* at a time.
	type task struct {
		iter, block, sweeps int
	}
	work := make(chan task)
	var wg sync.WaitGroup
	var poolWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		poolWG.Add(1)
		go func(w int) {
			defer poolWG.Done()
			scr := p.getKernelScratch()
			defer p.putKernelScratch(scr)
			for t := range work {
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					// Cancellation inside the sweep: drain without computing
					// so a chaos Delay or a large kernel cannot stretch the
					// cancellation latency past the in-flight block.
					wg.Done()
					continue
				}
				if opt.Replay == nil {
					opt.Chaos.delay(em, t.iter, t.block)
				}
				if t.sweeps == 0 {
					// A singular block would have failed at factorization;
					// Solve only errors on dimension mismatch, which the
					// construction rules out.
					_ = runBlockExact(a, b, &views[t.block], factors.lu[t.block], x, writer, scr)
				} else {
					iterDelta.add(kern(a, sp, b, &views[t.block], t.sweeps, rule, x, x, writer, scr))
				}
				em.addBlockSweep()
				if opt.Replay != nil {
					em.addReplayEvent()
				}
				if opt.Record != nil {
					opt.Record.Append(sched.Event{
						Epoch: int32(t.iter), Block: int32(t.block),
						Sweeps: int32(t.sweeps), Worker: int16(w),
					})
				}
				wg.Done()
			}
		}(w)
	}
	defer func() {
		close(work)
		poolWG.Wait()
	}()

	sweeps := opt.LocalIters
	if opt.ExactLocal {
		sweeps = 0
	}
	maxIters := opt.MaxGlobalIters
	if opt.Replay != nil {
		maxIters = len(replayEpochs)
	}
	if opt.RecordHistory {
		res.History = make([]float64, 0, maxIters)
	}
	is := p.getIterScratch()
	defer p.putIterScratch(is)
	cs := newChaoticScheduler(opt, em, nb, is.order)
	rs := newResidualState(opt, p.factors != nil, is.resid)
	xHost := make([]float64, n)
	for iter := 1; iter <= maxIters; iter++ {
		if err := ctxErr(opt.Ctx, iter-1); err != nil {
			x.CopyInto(xHost)
			res.X = xHost
			return res, err
		}
		iterDelta.reset()
		if opt.Replay != nil {
			for _, e := range replayEpochs[iter-1] {
				if err := ctxErr(opt.Ctx, iter-1); err != nil {
					x.CopyInto(xHost)
					res.X = xHost
					return res, err
				}
				wg.Add(1)
				work <- task{iter: iter, block: int(e.Block), sweeps: int(e.Sweeps)}
				wg.Wait() // yield point: serialize the recorded order
			}
		} else {
			order := cs.BeginIteration(iter)
			for _, bi := range order {
				// Per-block cancellation check: stop dispatching as soon as
				// the context is done, so at most the in-flight blocks (≤
				// workers) run to completion instead of the whole sweep.
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					break
				}
				if opt.SkipBlock != nil && opt.SkipBlock(iter, bi) {
					continue
				}
				wg.Add(1)
				work <- task{iter: iter, block: bi, sweeps: sweeps}
			}
			wg.Wait() // end-of-global-iteration barrier
			if err := ctxErr(opt.Ctx, iter-1); err != nil {
				x.CopyInto(xHost)
				res.X = xHost
				return res, err
			}
		}
		em.addIteration()

		if opt.AfterIteration != nil {
			opt.AfterIteration(iter, iterateAccess(opt.Precision, atomicAccess{x}))
		}
		delta2 := iterDelta.load()
		if rs.skip(iter, maxIters, delta2) {
			res.GlobalIterations = iter
			continue
		}
		x.CopyInto(xHost)
		stop, err := checkResidual(a, b, xHost, opt, &res, iter, delta2, rs)
		if err != nil {
			res.X = xHost
			return res, err
		}
		if stop {
			break
		}
	}
	x.CopyInto(xHost)
	res.X = xHost
	res.Momentum = rule.prev
	if !opt.RecordHistory && opt.Tolerance == 0 {
		res.Residual = residualInto(is.resid, a, b, xHost)
	}
	return res, nil
}
