package core

import (
	"sync"

	"repro/internal/gpusim"
)

// solveGoroutine runs the truly asynchronous engine: every global iteration
// dispatches all blocks (in a seeded chaotic order) to a pool of workers —
// one per simulated multiprocessor — that read and write the shared iterate
// through per-component atomics with no further coordination. Concurrent
// blocks observe each other's partial progress nondeterministically,
// reproducing the chaotic interleavings of CUDA stream execution; only the
// end of the global iteration is a barrier, so the iteration count and the
// residual history remain well defined (the paper's measurement unit).
func solveGoroutine(p *Plan, b []float64, opt Options) (Result, error) {
	a, sp, part, views := p.a, p.sp, p.part, p.views

	n := a.Rows
	start := make([]float64, n)
	if opt.InitialGuess != nil {
		copy(start, opt.InitialGuess)
	}
	x := NewAtomicVector(start)
	sched := gpusim.NewScheduler(opt.Seed, opt.Recurrence)
	nb := part.NumBlocks()
	res := Result{NumBlocks: nb}

	omega := opt.Omega
	factors := p.factors
	workers := opt.Workers
	if workers > nb {
		workers = nb
	}
	if workers < 1 {
		workers = 1
	}

	maxBlock := p.maxBlock
	// Persistent worker pool fed one global iteration at a time.
	work := make(chan int)
	var wg sync.WaitGroup
	var poolWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		poolWG.Add(1)
		go func() {
			defer poolWG.Done()
			scr := newKernelScratch(maxBlock)
			for bi := range work {
				if factors != nil {
					// A singular block would have failed at factorization;
					// Solve only errors on dimension mismatch, which the
					// construction rules out.
					_ = runBlockExact(a, b, views[bi], factors.lu[bi], x, x, scr)
				} else {
					runBlockKernel(a, sp, b, views[bi], opt.LocalIters, omega, x, x, x, scr)
				}
				wg.Done()
			}
		}()
	}
	defer func() {
		close(work)
		poolWG.Wait()
	}()

	xHost := make([]float64, n)
	for iter := 1; iter <= opt.MaxGlobalIters; iter++ {
		if err := ctxErr(opt.Ctx, iter-1); err != nil {
			x.CopyInto(xHost)
			res.X = xHost
			return res, err
		}
		order := sched.Order(nb)
		for _, bi := range order {
			if opt.SkipBlock != nil && opt.SkipBlock(iter, bi) {
				continue
			}
			wg.Add(1)
			work <- bi
		}
		wg.Wait() // end-of-global-iteration barrier

		if opt.AfterIteration != nil {
			opt.AfterIteration(iter, atomicAccess{x})
		}
		x.CopyInto(xHost)
		stop, err := checkResidual(a, b, xHost, opt, &res, iter)
		if err != nil {
			res.X = xHost
			return res, err
		}
		if stop {
			break
		}
	}
	x.CopyInto(xHost)
	res.X = xHost
	if !opt.RecordHistory && opt.Tolerance == 0 {
		res.Residual = residual(a, b, xHost)
	}
	return res, nil
}
