package core

import (
	"fmt"
	"math"

	"repro/internal/gpusim"
	"repro/internal/sparse"
)

// The paper sets its parameters "through empirically based tuning" (§3.2)
// and names the optimal choice of local iterations, subdomain sizes and
// scaling parameters an open problem (§5). Tune automates that process:
// it probes candidate (BlockSize, LocalIters) configurations with short
// runs, scores each by *modeled time to target residual* — convergence
// rate × per-iteration hardware cost — and returns the winner.

// TuneConfig bounds the search.
type TuneConfig struct {
	// BlockSizes and LocalIters are the candidate grids. Defaults: the
	// paper's neighbourhood {64, 128, 256, 448, 896} × {1, 2, 3, 5, 8}.
	BlockSizes []int
	LocalIters []int
	// ProbeIters is the length of each probe run (default 25).
	ProbeIters int
	// Model prices the configurations (default gpusim.CalibratedModel).
	Model *gpusim.PerfModel
	Seed  int64
}

func (c TuneConfig) withDefaults() TuneConfig {
	if len(c.BlockSizes) == 0 {
		c.BlockSizes = []int{64, 128, 256, 448, 896}
	}
	if len(c.LocalIters) == 0 {
		c.LocalIters = []int{1, 2, 3, 5, 8}
	}
	if c.ProbeIters <= 0 {
		c.ProbeIters = 25
	}
	if c.Model == nil {
		m := gpusim.CalibratedModel()
		c.Model = &m
	}
	return c
}

// TuneResult reports the tuning outcome.
type TuneResult struct {
	BlockSize  int
	LocalIters int
	// Rate is the measured per-global-iteration residual contraction of
	// the winning configuration (geometric mean over the probe run).
	Rate float64
	// SecondsPerDigit is the modeled wall time to gain one decimal digit
	// of accuracy — the score minimized.
	SecondsPerDigit float64
	// Probed counts configurations evaluated; Skipped counts those that
	// failed to contract during the probe (e.g. divergent).
	Probed, Skipped int
}

// Tune probes the candidate grid on the given system and returns the
// configuration with the lowest modeled time per digit of residual
// reduction. It returns an error if no candidate contracts at all (the
// ρ(|B|) ≥ 1 case — no parameter choice can fix s1rmt3m1).
func Tune(a *sparse.CSR, b []float64, cfg TuneConfig) (TuneResult, error) {
	cfg = cfg.withDefaults()
	best := TuneResult{SecondsPerDigit: math.Inf(1)}
	n, nnz := a.Rows, a.NNZ()
	for _, bs := range cfg.BlockSizes {
		if bs > n {
			continue // degenerate duplicates of the single-block case
		}
		for _, k := range cfg.LocalIters {
			best.Probed++
			res, err := Solve(a, b, Options{
				BlockSize:      bs,
				LocalIters:     k,
				MaxGlobalIters: cfg.ProbeIters,
				RecordHistory:  true,
				Seed:           cfg.Seed,
			})
			if err != nil || len(res.History) < 2 {
				best.Skipped++
				continue
			}
			h := res.History
			first, last := h[0], h[len(h)-1]
			if !(last > 0) || !(first > 0) || last >= first {
				best.Skipped++
				continue // not contracting (or already at exact zero)
			}
			rate := math.Pow(last/first, 1/float64(len(h)-1))
			iterTime := cfg.Model.AsyncIterTime(n, nnz, k)
			// Iterations per decimal digit: ln(10)/(−ln rate).
			perDigit := iterTime * math.Ln10 / -math.Log(rate)
			if perDigit < best.SecondsPerDigit {
				best.BlockSize = bs
				best.LocalIters = k
				best.Rate = rate
				best.SecondsPerDigit = perDigit
			}
		}
	}
	if math.IsInf(best.SecondsPerDigit, 1) {
		return best, fmt.Errorf("core: no candidate configuration contracted (ρ(|B|) ≥ 1?)")
	}
	return best, nil
}
