package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mats"
	"repro/internal/sched"
)

// dumpScheduleOnFailure writes the schedule JSON where CI picks it up as
// an artifact (REPLAY_TRACE_DIR; skipped when unset), so a failing replay
// can be reproduced from the uploaded trace.
func dumpScheduleOnFailure(t *testing.T, name string, s *sched.Schedule) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("REPLAY_TRACE_DIR")
		if dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("replay trace dir: %v", err)
			return
		}
		path := filepath.Join(dir, name+".json")
		f, err := os.Create(path)
		if err != nil {
			t.Logf("replay trace: %v", err)
			return
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			t.Logf("replay trace: %v", err)
			return
		}
		t.Logf("failing schedule written to %s", path)
	})
}

func sameVector(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A simulated-engine capture must replay bit-for-bit: same x, same
// residual history. The schedule retains the order, the stale masks and
// the effective seed, so even the per-component race coin flips repeat.
func TestSimulatedReplayBitIdentical(t *testing.T) {
	a := mats.Poisson2D(15, 15)
	b := onesRHS(a)
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"plain", Options{BlockSize: 16, LocalIters: 3, MaxGlobalIters: 40, RecordHistory: true, Seed: 11}},
		{"stale+omega", Options{BlockSize: 16, LocalIters: 5, MaxGlobalIters: 40, RecordHistory: true, Seed: 12, StaleProb: 0.4, Omega: 0.9}},
		{"exact-local", Options{BlockSize: 32, ExactLocal: true, MaxGlobalIters: 25, RecordHistory: true, Seed: 13}},
		{"tolerance-stop", Options{BlockSize: 16, LocalIters: 5, MaxGlobalIters: 500, RecordHistory: true, Seed: 14, Tolerance: 1e-9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := sched.NewRecorder(0)
			opt := tc.opt
			opt.Record = rec
			orig, err := Solve(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			s := rec.Schedule()
			dumpScheduleOnFailure(t, "sim-replay-"+tc.name, s)
			if s.Meta.Engine != "simulated" || s.Meta.Seed != opt.Seed {
				t.Fatalf("meta = %+v", s.Meta)
			}

			ropt := tc.opt
			ropt.Seed = 999 // must be ignored: the schedule carries the seed
			ropt.Replay = s
			got, err := Solve(a, b, ropt)
			if err != nil {
				t.Fatal(err)
			}
			if !sameVector(orig.X, got.X) {
				t.Error("replayed x differs from the recorded run")
			}
			if !sameVector(orig.History, got.History) {
				t.Errorf("replayed history differs:\n orig %v\n got %v", orig.History, got.History)
			}
			if got.GlobalIterations != orig.GlobalIterations || got.Converged != orig.Converged {
				t.Errorf("iters/converged = %d/%v, want %d/%v",
					got.GlobalIterations, got.Converged, orig.GlobalIterations, orig.Converged)
			}
		})
	}
}

// The acceptance scenario: a free-running run recorded with sched.Record
// replays bit-identically (same x, same residual) across 50 replays. The
// live run races by design; each replay is sequenced by the gate.
func TestFreeRunningReplayBitIdenticalAcross50(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	b := onesRHS(a)
	rec := sched.NewRecorder(0)
	opt := FreeRunningOptions{
		BlockSize:       24,
		LocalIters:      3,
		MaxBlockUpdates: 4000,
		Tolerance:       1e-8,
		Workers:         4,
		Record:          rec,
	}
	if _, err := SolveFreeRunning(a, b, opt); err != nil {
		t.Fatal(err)
	}
	s := rec.Schedule()
	dumpScheduleOnFailure(t, "freerun-replay-50", s)
	if s.Truncated || len(s.Events) == 0 {
		t.Fatalf("capture unusable: truncated=%v events=%d", s.Truncated, len(s.Events))
	}
	if s.Meta.Engine != "freerunning" {
		t.Fatalf("meta engine = %q", s.Meta.Engine)
	}

	replays := 50
	if testing.Short() {
		replays = 10
	}
	var refX []float64
	var refRes float64
	for i := 0; i < replays; i++ {
		got, err := SolveFreeRunning(a, b, FreeRunningOptions{
			BlockSize: 24, LocalIters: 3, Tolerance: 1e-8, Replay: s,
		})
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if got.BlockUpdates != int64(len(s.Events)) {
			t.Fatalf("replay %d executed %d updates, schedule has %d", i, got.BlockUpdates, len(s.Events))
		}
		if i == 0 {
			refX, refRes = got.X, got.Residual
			continue
		}
		if !sameVector(refX, got.X) {
			t.Fatalf("replay %d produced a different iterate", i)
		}
		if got.Residual != refRes {
			t.Fatalf("replay %d residual %g, want %g", i, got.Residual, refRes)
		}
	}
}

// A goroutine-engine capture replays deterministically through the same
// worker pool (events dispatched one at a time — the injected yield
// point), and the replayed iterate solves the system.
func TestGoroutineReplayDeterministic(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	b := onesRHS(a)
	rec := sched.NewRecorder(0)
	opt := Options{
		BlockSize: 16, LocalIters: 3, MaxGlobalIters: 400, Tolerance: 1e-8,
		RecordHistory: true, Engine: EngineGoroutine, Seed: 5, Workers: 4, Record: rec,
	}
	orig, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Converged {
		t.Fatalf("live run did not converge: %g", orig.Residual)
	}
	s := rec.Schedule()
	dumpScheduleOnFailure(t, "goroutine-replay", s)
	if s.Meta.Engine != "goroutine" {
		t.Fatalf("meta engine = %q", s.Meta.Engine)
	}

	ropt := Options{
		BlockSize: 16, LocalIters: 3, MaxGlobalIters: 400, RecordHistory: true,
		Engine: EngineGoroutine, Workers: 4, Replay: s,
	}
	r1, err := Solve(a, b, ropt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(a, b, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameVector(r1.X, r2.X) || !sameVector(r1.History, r2.History) {
		t.Error("two replays of one goroutine capture differ")
	}
	if r1.GlobalIterations != s.Epochs() {
		t.Errorf("replay ran %d iterations, schedule has %d epochs", r1.GlobalIterations, s.Epochs())
	}
	checkSolvesOnes(t, "goroutine replay", r1.X, 1e-5)
}

// Any capture — here a free-running one — replays through the simulated
// engine as a canonical deterministic execution.
func TestFreeRunningCaptureReplaysThroughSimulatedEngine(t *testing.T) {
	a := mats.Poisson2D(10, 10)
	b := onesRHS(a)
	rec := sched.NewRecorder(0)
	if _, err := SolveFreeRunning(a, b, FreeRunningOptions{
		BlockSize: 20, LocalIters: 3, MaxBlockUpdates: 2000, Tolerance: 1e-8,
		Workers: 3, Record: rec,
	}); err != nil {
		t.Fatal(err)
	}
	s := rec.Schedule()
	dumpScheduleOnFailure(t, "freerun-via-sim", s)

	ropt := Options{BlockSize: 20, LocalIters: 3, MaxGlobalIters: 1, RecordHistory: true, Replay: s}
	r1, err := Solve(a, b, ropt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(a, b, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameVector(r1.X, r2.X) {
		t.Error("flat replays differ")
	}
	checkSolvesOnes(t, "flat replay", r1.X, 1e-4)

	// The goroutine engine cannot group a free-running capture into
	// global iterations and must say so.
	ropt.Engine = EngineGoroutine
	if _, err := Solve(a, b, ropt); err == nil {
		t.Error("goroutine engine accepted a freerunning capture")
	}
}

// Replay validation: block-count mismatches and truncated captures are
// rejected, and exact-local events need a plan with factors.
func TestReplayValidation(t *testing.T) {
	a := mats.Poisson2D(10, 10)
	b := onesRHS(a)
	s := &sched.Schedule{
		Meta:   sched.Meta{Engine: "simulated", NumBlocks: 3, Workers: 1},
		Events: []sched.Event{{Epoch: 1, Block: 0, Sweeps: 2}},
	}
	// Plan with BlockSize 20 over 100 rows has 5 blocks, not 3.
	if _, err := Solve(a, b, Options{BlockSize: 20, LocalIters: 2, MaxGlobalIters: 10, Replay: s}); err == nil {
		t.Error("block-count mismatch accepted")
	}
	s.Meta.NumBlocks = 5
	s.Truncated = true
	if _, err := Solve(a, b, Options{BlockSize: 20, LocalIters: 2, MaxGlobalIters: 10, Replay: s}); err == nil {
		t.Error("truncated capture accepted")
	}
	s.Truncated = false
	s.Events[0].Sweeps = 0 // exact local, but the plan has no LU factors
	if _, err := Solve(a, b, Options{BlockSize: 20, LocalIters: 2, MaxGlobalIters: 10, Replay: s}); err == nil {
		t.Error("exact-local event accepted without factors")
	}
}

// Seed 0 must not collide across runs: it derives a distinct per-run
// stream, and the capture retains the derived seed so such a run stays
// replayable.
func TestSeedZeroDerivesDistinctStreams(t *testing.T) {
	a := mats.Poisson2D(15, 15)
	b := onesRHS(a)
	opt := Options{
		BlockSize: 16, LocalIters: 5, MaxGlobalIters: 30, RecordHistory: true,
		Workers: 4,
	}
	r1, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.History {
		if r1.History[i] != r2.History[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two Seed==0 runs produced identical histories (streams collide)")
	}

	// The derived seed lands in the capture, so a Seed==0 run replays
	// bit-for-bit.
	rec := sched.NewRecorder(0)
	opt.Record = rec
	r3, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Schedule()
	if s.Meta.Seed == 0 {
		t.Fatal("capture of a Seed==0 run recorded seed 0")
	}
	opt.Record = nil
	opt.Replay = s
	r4, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameVector(r3.X, r4.X) || !sameVector(r3.History, r4.History) {
		t.Error("replay of a Seed==0 capture is not bit-identical")
	}
}

func TestNextRunSeedNeverZeroAndDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 10000; i++ {
		s := nextRunSeed()
		if s == 0 {
			t.Fatal("nextRunSeed returned 0")
		}
		if seen[s] {
			t.Fatalf("nextRunSeed repeated %d after %d draws", s, i)
		}
		seen[s] = true
	}
}

// Chaos hooks must reach all engines and leave recorded runs replayable:
// the capture bakes in the chaos effects, so replay (with no chaos
// configured) still matches bit-for-bit.
func TestChaosHooksObservedAndReplayable(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	b := onesRHS(a)
	var delays, reorders, stales int
	chaos := &ChaosHooks{
		Delay:   func(iter, block int) { delays++ },
		Reorder: func(iter int, order []int) { reorders++; order[0], order[len(order)-1] = order[len(order)-1], order[0] },
		StaleRead: func(iter, block int) bool {
			stales++
			return block == 1
		},
	}
	rec := sched.NewRecorder(0)
	opt := Options{
		BlockSize: 16, LocalIters: 3, MaxGlobalIters: 20, RecordHistory: true,
		Seed: 21, Chaos: chaos, Record: rec,
	}
	orig, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if delays == 0 || reorders == 0 || stales == 0 {
		t.Fatalf("chaos hooks not invoked: delays=%d reorders=%d stales=%d", delays, reorders, stales)
	}
	s := rec.Schedule()
	dumpScheduleOnFailure(t, "chaos-replay", s)
	got, err := Solve(a, b, Options{
		BlockSize: 16, LocalIters: 3, MaxGlobalIters: 20, RecordHistory: true, Replay: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameVector(orig.X, got.X) || !sameVector(orig.History, got.History) {
		t.Error("replay of a chaos-perturbed run is not bit-identical")
	}
}

// Recording must not alter the trajectory: with and without a recorder,
// equal seeds give equal results.
func TestRecordingDoesNotPerturbRun(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	b := onesRHS(a)
	base := Options{BlockSize: 16, LocalIters: 3, MaxGlobalIters: 25, RecordHistory: true, Seed: 31}
	r1, err := Solve(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	withRec := base
	withRec.Record = sched.NewRecorder(0)
	r2, err := Solve(a, b, withRec)
	if err != nil {
		t.Fatal(err)
	}
	if !sameVector(r1.History, r2.History) {
		t.Error("recording changed the run")
	}
}

// ErrNotConverged plumbing used by the service retry loop: a capped run
// reports Converged=false without an engine error, and callers wrap the
// sentinel.
func TestNotConvergedSentinelWrapping(t *testing.T) {
	err := fmt.Errorf("service: %w after 3 attempts", ErrNotConverged)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatal("wrapped sentinel lost")
	}
}
