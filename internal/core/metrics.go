package core

import (
	"time"

	"repro/internal/metrics"
)

// EngineNames lists the engine labels SolveMetrics pre-registers, in the
// order the engines are documented: the three stock execution engines of
// the package plus the sharded executor behind the multi-device and
// cluster layers. One counter-name scheme covers them all (the core_*
// families below), keyed by this engine label.
var EngineNames = []string{"simulated", "goroutine", "freerunning", "sharded"}

// SolveMetrics is the solver-level observability sink behind
// Options.Metrics (and FreeRunningOptions.Metrics): per-engine counters
// registered in a metrics.Registry, a per-engine solve-duration histogram,
// and a bounded ring of per-iteration residuals. One SolveMetrics is meant
// to be shared across many solves (internal/service attaches a single
// instance to every job), so all methods are safe for concurrent use and
// nil-safe — a nil *SolveMetrics records nothing.
//
// The counters are pre-registered for every engine at construction, so a
// scrape of a freshly started daemon already exposes the full series set
// (at zero) rather than a schema that mutates as traffic arrives.
type SolveMetrics struct {
	ring    *metrics.Ring
	engines map[string]*engineCounters
}

// engineCounters is one engine's counter set. All methods are nil-safe so
// the engines can call them unconditionally.
type engineCounters struct {
	iterations      *metrics.Counter
	blockSweeps     *metrics.Counter
	staleReads      *metrics.Counter
	chaosInjections *metrics.Counter
	replayEvents    *metrics.Counter
	solveSeconds    *metrics.Histogram
}

// NewSolveMetrics registers the solver metric families in reg and returns
// the sink. residualRingCap bounds the retained residual history (≤ 0
// selects 256).
func NewSolveMetrics(reg *metrics.Registry, residualRingCap int) *SolveMetrics {
	if residualRingCap <= 0 {
		residualRingCap = 256
	}
	m := &SolveMetrics{
		ring:    metrics.NewRing(residualRingCap),
		engines: make(map[string]*engineCounters, len(EngineNames)),
	}
	for _, e := range EngineNames {
		m.engines[e] = &engineCounters{
			iterations: reg.Counter("core_global_iterations_total",
				"Completed global iterations (all blocks swept once).", "engine", e),
			blockSweeps: reg.Counter("core_block_sweeps_total",
				"Block kernel executions (one subdomain, k local sweeps).", "engine", e),
			staleReads: reg.Counter("core_stale_block_reads_total",
				"Blocks that read the iteration-start snapshot instead of live off-block values.", "engine", e),
			chaosInjections: reg.Counter("core_chaos_injections_total",
				"Chaos hook firings that perturbed the schedule (delay, reorder, forced-stale).", "engine", e),
			replayEvents: reg.Counter("core_replay_events_total",
				"Recorded schedule events re-executed during replay.", "engine", e),
			solveSeconds: reg.Histogram("core_solve_seconds",
				"Wall time per solve call.", nil, "engine", e),
		}
	}
	return m
}

// ResidualHistory returns the retained per-iteration residuals,
// oldest-first. The ring spans solves: a sequence of short solves leaves
// their trailing residuals concatenated, which is exactly the "recent
// convergence behaviour" view a dashboard wants.
func (m *SolveMetrics) ResidualHistory() []float64 {
	if m == nil {
		return nil
	}
	return m.ring.Snapshot()
}

// LastResidual returns the most recent residual pushed by any solve.
func (m *SolveMetrics) LastResidual() (float64, bool) {
	if m == nil {
		return 0, false
	}
	return m.ring.Last()
}

// ResidualsObserved returns the total number of residuals ever pushed.
func (m *SolveMetrics) ResidualsObserved() uint64 {
	if m == nil {
		return 0
	}
	return m.ring.Total()
}

// engine returns the counter set for the named engine (nil on a nil sink).
func (m *SolveMetrics) engine(name string) *engineCounters {
	if m == nil {
		return nil
	}
	return m.engines[name]
}

// pushResidual appends one per-iteration residual to the ring.
func (m *SolveMetrics) pushResidual(r float64) {
	if m != nil {
		m.ring.Push(r)
	}
}

// observeSolve records one solve call's wall time under the engine label.
func (m *SolveMetrics) observeSolve(engine string, d time.Duration) {
	if e := m.engine(engine); e != nil {
		e.solveSeconds.Observe(d.Seconds())
	}
}

func (e *engineCounters) addIteration() {
	if e != nil {
		e.iterations.Inc()
	}
}

func (e *engineCounters) addBlockSweep() {
	if e != nil {
		e.blockSweeps.Inc()
	}
}

func (e *engineCounters) addStaleRead() {
	if e != nil {
		e.staleReads.Inc()
	}
}

func (e *engineCounters) addChaos() {
	if e != nil {
		e.chaosInjections.Inc()
	}
}

func (e *engineCounters) addReplayEvent() {
	if e != nil {
		e.replayEvents.Inc()
	}
}
