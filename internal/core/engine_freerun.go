package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// FreeRunningOptions configures SolveFreeRunning, the fully asynchronous
// extension engine: there is no global barrier of any kind. Each worker
// owns a fixed set of blocks and sweeps them in a loop until a monitor
// observes convergence or the update budget is exhausted. This is the
// purest software realization of chaotic relaxation — the update function
// u(·) is whatever the Go scheduler produces — and demonstrates the
// paper's Exascale argument: progress continues regardless of relative
// worker speeds.
type FreeRunningOptions struct {
	BlockSize  int
	LocalIters int
	// MaxBlockUpdates bounds the total number of block kernel executions
	// across all workers. Required > 0.
	MaxBlockUpdates int64
	// Tolerance is the absolute l2 residual target checked by the monitor.
	// Required > 0 (a free-running solve needs a stopping rule).
	Tolerance float64
	// Workers defaults to 14 (Fermi multiprocessor count).
	Workers int
	// CheckEvery is the number of block updates between monitor residual
	// checks; default max(numBlocks, 64).
	CheckEvery   int64
	InitialGuess []float64
	// Ctx, if non-nil, stops the free-running workers as soon as it is
	// done; the solve then returns the partial iterate and an error
	// wrapping ErrCanceled. A nil Ctx never cancels.
	Ctx context.Context
}

// FreeRunningResult reports a free-running solve.
type FreeRunningResult struct {
	X            []float64
	BlockUpdates int64 // total kernel executions performed
	Residual     float64
	Converged    bool
	// EquivalentGlobalIters is BlockUpdates divided by the block count —
	// the comparable unit to Result.GlobalIterations.
	EquivalentGlobalIters float64
}

// SolveFreeRunning runs the barrier-free asynchronous iteration.
func SolveFreeRunning(a *sparse.CSR, b []float64, opt FreeRunningOptions) (FreeRunningResult, error) {
	if a.Rows != a.Cols {
		return FreeRunningResult{}, fmt.Errorf("core: matrix must be square, have %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return FreeRunningResult{}, fmt.Errorf("core: rhs length %d does not match dimension %d", len(b), a.Rows)
	}
	if opt.BlockSize <= 0 || opt.LocalIters <= 0 {
		return FreeRunningResult{}, fmt.Errorf("core: BlockSize and LocalIters must be positive, have %d, %d",
			opt.BlockSize, opt.LocalIters)
	}
	if opt.MaxBlockUpdates <= 0 {
		return FreeRunningResult{}, fmt.Errorf("core: MaxBlockUpdates must be positive, have %d", opt.MaxBlockUpdates)
	}
	if opt.Tolerance <= 0 {
		return FreeRunningResult{}, fmt.Errorf("core: free-running solve requires a positive Tolerance")
	}
	if opt.InitialGuess != nil && len(opt.InitialGuess) != a.Rows {
		return FreeRunningResult{}, fmt.Errorf("core: initial guess length %d does not match dimension %d",
			len(opt.InitialGuess), a.Rows)
	}
	plan, err := NewPlan(a, opt.BlockSize, false)
	if err != nil {
		return FreeRunningResult{}, err
	}
	sp, part, views := plan.sp, plan.part, plan.views
	nb := part.NumBlocks()

	workers := opt.Workers
	if workers == 0 {
		workers = 14
	}
	if workers > nb {
		workers = nb
	}
	checkEvery := opt.CheckEvery
	if checkEvery <= 0 {
		checkEvery = int64(nb)
		if checkEvery < 64 {
			checkEvery = 64
		}
	}

	n := a.Rows
	start := make([]float64, n)
	if opt.InitialGuess != nil {
		copy(start, opt.InitialGuess)
	}
	x := NewAtomicVector(start)
	maxBlock := plan.maxBlock

	var (
		updates  int64 // atomic: total block updates
		stop     int32 // atomic: 1 once the monitor called the race
		canceled int32 // atomic: 1 when Ctx ended the run
		wg       sync.WaitGroup
	)

	// Context watcher: flips the same stop flag the monitor uses, so the
	// workers exit at their next block boundary.
	watcherDone := make(chan struct{})
	if opt.Ctx != nil {
		go func() {
			select {
			case <-opt.Ctx.Done():
				atomic.StoreInt32(&canceled, 1)
				atomic.StoreInt32(&stop, 1)
			case <-watcherDone:
			}
		}()
	}

	// Workers: worker w owns blocks w, w+workers, w+2·workers, ... and
	// sweeps them round-robin, satisfying fairness (condition 1) while the
	// relative progress of different workers is left to the Go scheduler.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scr := newKernelScratch(maxBlock)
			for atomic.LoadInt32(&stop) == 0 {
				progressed := false
				for bi := w; bi < nb; bi += workers {
					if atomic.LoadInt32(&stop) != 0 {
						return
					}
					if atomic.AddInt64(&updates, 1) > opt.MaxBlockUpdates {
						atomic.AddInt64(&updates, -1)
						atomic.StoreInt32(&stop, 1)
						return
					}
					runBlockKernel(a, sp, b, views[bi], opt.LocalIters, 1, x, x, x, scr)
					progressed = true
					// Yield between block sweeps. On hosts with fewer
					// cores than workers, a tight loop would otherwise
					// re-sweep its own blocks thousands of times per
					// scheduling quantum while neighbours are parked —
					// wasted work that starves the Chazan–Miranker
					// fairness condition and stalls convergence.
					runtime.Gosched()
				}
				if !progressed {
					return
				}
			}
		}(w)
	}

	// Monitor: polls the residual every checkEvery block updates.
	monitorDone := make(chan FreeRunningResult, 1)
	go func() {
		r := make([]float64, n)
		xs := make([]float64, n)
		lastChecked := int64(0)
		for {
			if atomic.LoadInt32(&stop) != 0 {
				break
			}
			u := atomic.LoadInt64(&updates)
			if u-lastChecked < checkEvery {
				runtime.Gosched()
				continue
			}
			lastChecked = u
			x.CopyInto(xs)
			a.MulVec(r, xs)
			vecmath.Sub(r, b, r)
			nrm := vecmath.Nrm2(r)
			if nrm <= opt.Tolerance || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
				atomic.StoreInt32(&stop, 1)
				break
			}
		}
		monitorDone <- FreeRunningResult{}
	}()

	wg.Wait()
	atomic.StoreInt32(&stop, 1)
	close(watcherDone)
	<-monitorDone

	xs := x.Snapshot()
	res := FreeRunningResult{
		X:            xs,
		BlockUpdates: atomic.LoadInt64(&updates),
	}
	res.EquivalentGlobalIters = float64(res.BlockUpdates) / float64(nb)
	res.Residual = residual(a, b, xs)
	if math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
		return res, fmt.Errorf("%w after %d block updates", ErrDiverged, res.BlockUpdates)
	}
	res.Converged = res.Residual <= opt.Tolerance
	if !res.Converged && atomic.LoadInt32(&canceled) != 0 {
		return res, fmt.Errorf("%w after %d block updates: %w", ErrCanceled, res.BlockUpdates, opt.Ctx.Err())
	}
	return res, nil
}
