package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// FreeRunningOptions configures SolveFreeRunning, the fully asynchronous
// extension engine: there is no global barrier of any kind. Each worker
// owns a fixed set of blocks and sweeps them in a loop until a monitor
// observes convergence or the update budget is exhausted. This is the
// purest software realization of chaotic relaxation — the update function
// u(·) is whatever the Go scheduler produces — and demonstrates the
// paper's Exascale argument: progress continues regardless of relative
// worker speeds.
type FreeRunningOptions struct {
	BlockSize  int
	LocalIters int
	// MaxBlockUpdates bounds the total number of block kernel executions
	// across all workers. Required > 0.
	MaxBlockUpdates int64
	// Tolerance is the absolute l2 residual target checked by the monitor.
	// Required > 0 (a free-running solve needs a stopping rule).
	Tolerance float64
	// Workers defaults to 14 (Fermi multiprocessor count).
	Workers int
	// Precision selects the iterate storage precision — "" / PrecF64 for
	// exact doubles, PrecF32 for float32 iterate storage with float64
	// accumulation and residual checks (see precision.go).
	Precision string
	// Method and Beta select the update rule, with the Options semantics:
	// RuleRichardson2 with non-zero Beta adds the heavy-ball momentum term
	// to every sweep (the free-running ω stays the paper's literal 1). A
	// zero Beta runs the first-order path bit-identically to RuleJacobi.
	Method RuleKind
	Beta   float64
	// CheckEvery is the number of block updates between monitor residual
	// checks; default max(numBlocks, 64).
	CheckEvery   int64
	InitialGuess []float64
	// Ctx, if non-nil, stops the free-running workers as soon as it is
	// done; the solve then returns the partial iterate and an error
	// wrapping ErrCanceled. A nil Ctx never cancels.
	Ctx context.Context

	// Record, if non-nil, captures the executed block schedule: each
	// worker appends one sched.Event per block sweep, the recorder ring's
	// slot reservation defining the commit order.
	Record *sched.Recorder
	// Replay, if non-nil, re-executes a captured schedule
	// deterministically: the capture's worker count is re-created and a
	// turn gate (the injected yield point) sequences the workers through
	// the recorded event order, each block executing exclusively. Any two
	// replays of one schedule produce bit-identical iterates.
	// MaxBlockUpdates and the convergence monitor are ignored — the
	// schedule itself bounds the work.
	Replay *sched.Schedule
	// Chaos, if non-nil, injects delays before block sweeps (only the
	// Delay hook applies: a free-running run has no dispatch order to
	// reorder and its staleness is physical). Ignored during replay.
	Chaos *ChaosHooks

	// Metrics, if non-nil, receives the "freerunning" engine counters
	// (block sweeps, chaos injections, replay events) and every residual
	// the convergence monitor computes. A free-running run has no global
	// iterations, so that counter stays 0 — EquivalentGlobalIters is the
	// comparable unit.
	Metrics *SolveMetrics

	// referenceKernel pins the workers to the pre-staging reference block
	// kernel (see Options.referenceKernel).
	referenceKernel bool
}

// FreeRunningResult reports a free-running solve.
type FreeRunningResult struct {
	X            []float64
	BlockUpdates int64 // total kernel executions performed
	Residual     float64
	Converged    bool
	// EquivalentGlobalIters is BlockUpdates divided by the block count —
	// the comparable unit to Result.GlobalIterations.
	EquivalentGlobalIters float64
	// Momentum is the final momentum trail of a non-zero-Beta run (see
	// Result.Momentum); nil on the first-order path.
	Momentum []float64
}

// validate checks a free-running configuration against the system; the one
// validation path both entry points share (the substrate's satellite
// dedupe: SolveFreeRunning and SolveFreeRunningWithPlan used to carry
// diverging copies of these checks).
func (o FreeRunningOptions) validate(a *sparse.CSR, b []float64) error {
	if err := validateSystem(a, b); err != nil {
		return err
	}
	if o.BlockSize <= 0 || o.LocalIters <= 0 {
		return fmt.Errorf("core: BlockSize and LocalIters must be positive, have %d, %d",
			o.BlockSize, o.LocalIters)
	}
	if o.MaxBlockUpdates <= 0 && o.Replay == nil {
		return fmt.Errorf("core: MaxBlockUpdates must be positive, have %d", o.MaxBlockUpdates)
	}
	if o.Tolerance <= 0 && o.Replay == nil {
		// A live free-running solve needs a stopping rule; a replay is
		// bounded by its schedule, so the tolerance is optional there.
		return fmt.Errorf("core: free-running solve requires a positive Tolerance")
	}
	if err := validatePrecision(o.Precision); err != nil {
		return err
	}
	if o.Method != RuleJacobi && o.Method != RuleRichardson2 {
		return fmt.Errorf("core: unknown update rule %v", o.Method)
	}
	if o.Beta < 0 || o.Beta >= 1 {
		return fmt.Errorf("core: Beta must lie in [0,1), have %g", o.Beta)
	}
	if o.Beta != 0 && o.Method != RuleRichardson2 {
		return fmt.Errorf("core: Beta %g requires Method RuleRichardson2, have %s", o.Beta, o.Method)
	}
	return validateGuess(a.Rows, o.InitialGuess)
}

// SolveFreeRunning runs the barrier-free asynchronous iteration.
func SolveFreeRunning(a *sparse.CSR, b []float64, opt FreeRunningOptions) (FreeRunningResult, error) {
	if err := opt.validate(a, b); err != nil {
		return FreeRunningResult{}, err
	}
	plan, err := NewPlan(a, opt.BlockSize, false)
	if err != nil {
		return FreeRunningResult{}, err
	}
	return SolveFreeRunningWithPlan(plan, b, opt)
}

// SolveFreeRunningWithPlan runs the barrier-free iteration on a prepared
// plan, amortizing the per-matrix setup across solves the way SolveWithPlan
// does for the barrier engines. opt.BlockSize must be 0 or match the plan.
func SolveFreeRunningWithPlan(plan *Plan, b []float64, opt FreeRunningOptions) (FreeRunningResult, error) {
	a := plan.a
	if opt.BlockSize == 0 {
		opt.BlockSize = plan.blockSize
	}
	if opt.BlockSize != plan.blockSize {
		return FreeRunningResult{}, fmt.Errorf("core: option BlockSize %d does not match the plan's %d",
			opt.BlockSize, plan.blockSize)
	}
	if err := opt.validate(a, b); err != nil {
		return FreeRunningResult{}, err
	}
	if opt.Metrics != nil {
		defer func(start time.Time) {
			opt.Metrics.observeSolve("freerunning", time.Since(start))
		}(time.Now())
	}
	if opt.Replay != nil {
		return replayFreeRunning(plan, b, opt)
	}
	sp, part, views := plan.sp, plan.part, plan.views
	nb := part.NumBlocks()

	workers := opt.Workers
	if workers == 0 {
		workers = 14
	}
	if workers > nb {
		workers = nb
	}
	if opt.Record != nil {
		opt.Record.SetMeta(sched.Meta{
			Engine:     "freerunning",
			NumBlocks:  nb,
			Workers:    workers,
			Omega:      1,
			LocalIters: opt.LocalIters,
			Method:     opt.Method.String(),
			Beta:       opt.Beta,
		})
	}
	checkEvery := opt.CheckEvery
	if checkEvery <= 0 {
		checkEvery = int64(nb)
		if checkEvery < 64 {
			checkEvery = 64
		}
	}

	n := a.Rows
	start := make([]float64, n)
	if opt.InitialGuess != nil {
		copy(start, opt.InitialGuess)
	}
	roundIterate(opt.Precision, start)
	x := NewAtomicVector(start)
	writer := iterateWriter(opt.Precision, valueWriter(x))
	kern := plan.kernelFor(opt.referenceKernel)
	rule := newUpdateRule(opt.Method, 1, opt.Beta, opt.Precision, start, nil)
	em := opt.Metrics.engine("freerunning")

	var (
		updates  int64 // atomic: total block updates
		stop     int32 // atomic: 1 once the monitor called the race
		canceled int32 // atomic: 1 when Ctx ended the run
		wg       sync.WaitGroup
	)

	// Context watcher: flips the same stop flag the monitor uses, so the
	// workers exit at their next block boundary.
	watcherDone := make(chan struct{})
	if opt.Ctx != nil {
		go func() {
			select {
			case <-opt.Ctx.Done():
				atomic.StoreInt32(&canceled, 1)
				atomic.StoreInt32(&stop, 1)
			case <-watcherDone:
			}
		}()
	}

	// Workers: worker w owns blocks w, w+workers, w+2·workers, ... and
	// sweeps them round-robin, satisfying fairness (condition 1) while the
	// relative progress of different workers is left to the Go scheduler.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scr := plan.getKernelScratch()
			defer plan.putKernelScratch(scr)
			round := 0
			for atomic.LoadInt32(&stop) == 0 {
				progressed := false
				round++
				for bi := w; bi < nb; bi += workers {
					if atomic.LoadInt32(&stop) != 0 {
						return
					}
					if atomic.AddInt64(&updates, 1) > opt.MaxBlockUpdates {
						atomic.AddInt64(&updates, -1)
						atomic.StoreInt32(&stop, 1)
						return
					}
					opt.Chaos.delay(em, round, bi)
					kern(a, sp, b, &views[bi], opt.LocalIters, rule, x, x, writer, scr)
					em.addBlockSweep()
					if opt.Record != nil {
						opt.Record.Append(sched.Event{
							Epoch: int32(round), Block: int32(bi),
							Sweeps: int32(opt.LocalIters), Worker: int16(w),
						})
					}
					progressed = true
					// Yield between block sweeps. On hosts with fewer
					// cores than workers, a tight loop would otherwise
					// re-sweep its own blocks thousands of times per
					// scheduling quantum while neighbours are parked —
					// wasted work that starves the Chazan–Miranker
					// fairness condition and stalls convergence.
					runtime.Gosched()
				}
				if !progressed {
					return
				}
			}
		}(w)
	}

	// Monitor: polls the residual every checkEvery block updates.
	monitorDone := make(chan FreeRunningResult, 1)
	go func() {
		r := make([]float64, n)
		xs := make([]float64, n)
		lastChecked := int64(0)
		for {
			if atomic.LoadInt32(&stop) != 0 {
				break
			}
			u := atomic.LoadInt64(&updates)
			if u-lastChecked < checkEvery {
				runtime.Gosched()
				continue
			}
			lastChecked = u
			x.CopyInto(xs)
			a.MulVec(r, xs)
			vecmath.Sub(r, b, r)
			nrm := vecmath.Nrm2(r)
			opt.Metrics.pushResidual(nrm)
			if nrm <= opt.Tolerance || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
				atomic.StoreInt32(&stop, 1)
				break
			}
		}
		monitorDone <- FreeRunningResult{}
	}()

	wg.Wait()
	atomic.StoreInt32(&stop, 1)
	close(watcherDone)
	<-monitorDone

	xs := x.Snapshot()
	res := FreeRunningResult{
		X:            xs,
		BlockUpdates: atomic.LoadInt64(&updates),
		Momentum:     rule.prev,
	}
	res.EquivalentGlobalIters = float64(res.BlockUpdates) / float64(nb)
	res.Residual = residual(a, b, xs)
	if math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
		return res, fmt.Errorf("%w after %d block updates", ErrDiverged, res.BlockUpdates)
	}
	res.Converged = res.Residual <= opt.Tolerance
	if !res.Converged && atomic.LoadInt32(&canceled) != 0 {
		return res, fmt.Errorf("%w after %d block updates: %w", ErrCanceled, res.BlockUpdates, opt.Ctx.Err())
	}
	return res, nil
}

// replayFreeRunning re-executes a captured schedule with the capture's
// worker topology. A sched.Gate hands out turns in recorded commit order:
// each worker blocks until the head event carries its worker index,
// executes the block exclusively, and passes the turn. Every off-block
// read therefore observes exactly the writes of the recorded
// predecessors, making the replay fully deterministic — and the gate's
// mutex gives the executions happens-before edges, so replays are clean
// under the race detector even though the live engine races by design.
func replayFreeRunning(plan *Plan, b []float64, opt FreeRunningOptions) (FreeRunningResult, error) {
	a, sp, part, views := plan.a, plan.sp, plan.part, plan.views
	nb := part.NumBlocks()
	s := opt.Replay
	if err := s.Validate(nb); err != nil {
		return FreeRunningResult{}, err
	}
	workers := s.Meta.Workers
	if workers < 1 {
		return FreeRunningResult{}, fmt.Errorf("core: replay schedule records %d workers; need at least 1", workers)
	}
	for i, e := range s.Events {
		if e.Worker < 0 || int(e.Worker) >= workers {
			return FreeRunningResult{}, fmt.Errorf("core: replay event %d: worker %d out of range [0,%d)", i, e.Worker, workers)
		}
	}

	n := a.Rows
	start := make([]float64, n)
	if opt.InitialGuess != nil {
		copy(start, opt.InitialGuess)
	}
	roundIterate(opt.Precision, start)
	x := NewAtomicVector(start)
	writer := iterateWriter(opt.Precision, valueWriter(x))
	kern := plan.kernelFor(opt.referenceKernel)
	rule := newUpdateRule(opt.Method, 1, replayBeta(s.Meta, opt.Beta), opt.Precision, start, nil)
	em := opt.Metrics.engine("freerunning")
	gate := sched.NewGate(s)
	owns := func(e sched.Event, w int) bool { return int(e.Worker) == w }
	if opt.Record != nil {
		opt.Record.SetMeta(s.Meta)
	}

	var (
		canceled atomic.Bool
		wg       sync.WaitGroup
	)
	watcherDone := make(chan struct{})
	if opt.Ctx != nil {
		go func() {
			select {
			case <-opt.Ctx.Done():
				canceled.Store(true)
			case <-watcherDone:
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scr := plan.getKernelScratch()
			defer plan.putKernelScratch(scr)
			for {
				e, ok := gate.Next(w, owns)
				if !ok {
					return
				}
				if canceled.Load() {
					gate.Done()
					continue // drain the schedule without executing
				}
				sweeps := int(e.Sweeps)
				if sweeps <= 0 {
					sweeps = opt.LocalIters
				}
				kern(a, sp, b, &views[int(e.Block)], sweeps, rule, x, x, writer, scr)
				em.addBlockSweep()
				em.addReplayEvent()
				if opt.Record != nil {
					opt.Record.Append(e)
				}
				gate.Done()
			}
		}(w)
	}
	wg.Wait()
	close(watcherDone)

	xs := x.Snapshot()
	res := FreeRunningResult{
		X:            xs,
		BlockUpdates: int64(len(s.Events)),
		Momentum:     rule.prev,
	}
	res.EquivalentGlobalIters = float64(res.BlockUpdates) / float64(nb)
	res.Residual = residual(a, b, xs)
	if math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
		return res, fmt.Errorf("%w after %d block updates", ErrDiverged, res.BlockUpdates)
	}
	res.Converged = res.Residual <= opt.Tolerance
	if canceled.Load() {
		return res, fmt.Errorf("%w during replay: %w", ErrCanceled, opt.Ctx.Err())
	}
	return res, nil
}
