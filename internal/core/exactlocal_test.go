package core

import (
	"math"
	"testing"

	"repro/internal/mats"
)

func TestExactLocalSingleBlockIsDirectSolve(t *testing.T) {
	// One block covering the whole system: the "iteration" is a direct
	// solve — converged after the first global iteration.
	a := mats.Poisson2D(10, 10)
	b := onesRHS(a)
	res, err := Solve(a, b, Options{
		BlockSize: 1 << 20, ExactLocal: true, MaxGlobalIters: 3,
		Tolerance: 1e-10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.GlobalIterations != 1 {
		t.Fatalf("direct solve should converge in 1 iteration: %+v", res.GlobalIterations)
	}
	checkSolvesOnes(t, "exact-local", res.X, 1e-8)
}

func TestExactLocalBeatsAnyFiniteK(t *testing.T) {
	// Block Jacobi with exact local solves converges in no more global
	// iterations than async-(k) for any finite k (same partition, same
	// schedule).
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	run := func(exact bool, k int) int {
		opt := Options{
			BlockSize: 150, MaxGlobalIters: 2000, Tolerance: 1e-9,
			Seed: 1, StaleProb: 1, // deterministic block-Jacobi schedule
		}
		if exact {
			opt.ExactLocal = true
		} else {
			opt.LocalIters = k
		}
		res, err := Solve(a, b, opt)
		if err != nil || !res.Converged {
			t.Fatalf("solve failed (exact=%v k=%d): %v", exact, k, err)
		}
		return res.GlobalIterations
	}
	exact := run(true, 0)
	for _, k := range []int{1, 5, 9} {
		if finite := run(false, k); finite < exact {
			t.Errorf("async-(%d) (%d iters) beat exact local solves (%d iters)", k, finite, exact)
		}
	}
}

func TestExactLocalDiminishingReturns(t *testing.T) {
	// The paper's "critical point, where adding more local iterations does
	// not improve the overall performance": async-(k) approaches the
	// exact-local iteration count as k grows.
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	opt := Options{
		BlockSize: 150, MaxGlobalIters: 2000, Tolerance: 1e-9,
		Seed: 1, StaleProb: 1, ExactLocal: true,
	}
	res, err := Solve(a, b, opt)
	if err != nil || !res.Converged {
		t.Fatal(err)
	}
	exact := res.GlobalIterations

	opt.ExactLocal = false
	opt.LocalIters = 25
	deep, err := Solve(a, b, opt)
	if err != nil || !deep.Converged {
		t.Fatal(err)
	}
	if d := deep.GlobalIterations - exact; d < 0 || d > 3 {
		t.Errorf("async-(25) (%d) should be within 3 iterations of exact local (%d)",
			deep.GlobalIterations, exact)
	}
}

func TestExactLocalGoroutineEngine(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	b := onesRHS(a)
	res, err := Solve(a, b, Options{
		BlockSize: 64, ExactLocal: true, MaxGlobalIters: 500,
		Tolerance: 1e-9, Engine: EngineGoroutine, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("goroutine exact-local failed: %g", res.Residual)
	}
	for i, v := range res.X {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
}

func TestExactLocalValidation(t *testing.T) {
	a := mats.Poisson2D(4, 4)
	b := onesRHS(a)
	// ExactLocal permits LocalIters = 0.
	if _, err := Solve(a, b, Options{BlockSize: 4, ExactLocal: true, MaxGlobalIters: 5, Tolerance: 1e-8}); err != nil {
		t.Fatalf("ExactLocal with LocalIters=0 should be valid: %v", err)
	}
}
