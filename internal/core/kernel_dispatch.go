package core

import (
	"fmt"
	"strings"

	"repro/internal/sparse"
)

// KernelKind selects the block-sweep kernel implementation a plan
// dispatches. All kinds produce bit-identical f64 iterates — same
// floating-point operation order, same IterateView.Load call order — so the
// choice is purely a performance decision and every engine, replay and
// shard path runs any of them unchanged (see docs/KERNELS.md).
type KernelKind int

const (
	// KernelAuto picks the best kernel the matrix supports: the
	// matrix-free stencil kernel when DetectStencil accepts the matrix,
	// packed CSR otherwise.
	KernelAuto KernelKind = iota
	// KernelCSR is the packed block-CSR kernel (runBlockKernel), the
	// baseline every other kind is gated against.
	KernelCSR
	// KernelStencil is the matrix-free constant-coefficient stencil
	// kernel: interior rows keep the whole stencil in locals and load no
	// column indices; boundary rows fall back to packed CSR.
	KernelStencil
	// KernelSELL stores each block's local sub-matrix in sliced-ELLPACK
	// (SELL-C) layout so the inner sweep loop runs lane-parallel over
	// fixed-height row slices — the general-matrix vectorization layout.
	KernelSELL
)

// String returns the kernel name used in flags, requests and metrics.
func (k KernelKind) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelCSR:
		return "csr"
	case KernelStencil:
		return "stencil"
	case KernelSELL:
		return "sell"
	}
	return fmt.Sprintf("KernelKind(%d)", int(k))
}

// ParseKernel parses a kernel name; the empty string means KernelAuto.
func ParseKernel(s string) (KernelKind, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return KernelAuto, nil
	case "csr":
		return KernelCSR, nil
	case "stencil":
		return KernelStencil, nil
	case "sell":
		return KernelSELL, nil
	}
	return KernelAuto, fmt.Errorf(`core: unknown kernel %q (want "auto", "csr", "stencil" or "sell")`, s)
}

// PlanConfig selects the kernel variant a plan is built for. The zero
// value (KernelAuto, no declared stencil) reproduces NewPlan's behavior:
// detect stencil structure, dispatch the fast path when it is there, packed
// CSR otherwise.
type PlanConfig struct {
	// Kernel selects the sweep kernel. KernelStencil fails plan
	// construction when the matrix has no (detected or declared) stencil
	// structure; KernelSELL and KernelStencil fail when the packed staging
	// is unavailable (column indices beyond int32).
	Kernel KernelKind
	// Stencil optionally declares the stencil instead of detecting it —
	// for operators the caller generated and knows exactly. A declared
	// spec implies KernelStencil under KernelAuto and must match at least
	// one row. Declared specs skip the detection threshold: even a
	// boundary-heavy matrix runs the declared stencil on whatever interior
	// rows it has.
	Stencil *sparse.StencilSpec
}

// stencilData is the per-plan state of the matrix-free stencil kernel: the
// non-diagonal (offset, coefficient) pairs in ascending offset order, the
// full stencil span for the in-block fast test, and the per-row
// interior/boundary classification.
type stencilData struct {
	info     *sparse.StencilInfo
	offs     []int     // non-diagonal offsets, ascending
	coeffs   []float64 // coefficients parallel to offs
	dmin     int       // first offset of the full stencil (≤ 0)
	dmax     int       // last offset of the full stencil (≥ 0)
	interior []bool    // per global row; false rows take the CSR fallback
}

func newStencilData(si *sparse.StencilInfo) *stencilData {
	sd := &stencilData{
		info:     si,
		interior: si.Interior,
		dmin:     si.Spec.Offsets[0],
		dmax:     si.Spec.Offsets[len(si.Spec.Offsets)-1],
	}
	if sd.dmin > 0 {
		sd.dmin = 0
	}
	if sd.dmax < 0 {
		sd.dmax = 0
	}
	for p, d := range si.Spec.Offsets {
		if d != 0 {
			sd.offs = append(sd.offs, d)
			sd.coeffs = append(sd.coeffs, si.Spec.Coeffs[p])
		}
	}
	return sd
}

func (sd *stencilData) memoryBytes() int64 {
	const w = 8
	return w*int64(len(sd.offs)+len(sd.coeffs)) + int64(len(sd.interior))
}

// rowSpan is a half-open block-local row range [lo, hi).
type rowSpan struct{ lo, hi int32 }

// buildStencilSpans precomputes, for every block, the maximal runs of rows
// the stencil kernel's fast loop covers: interior rows whose whole stencil
// span lies inside the block. The sweeps walk these runs branch-free and
// hand the gaps between them to the ranged slow path in one call per gap,
// so no per-row class test (band bounds, interior flag) survives into the
// hot loop — that test was worth ~30% of the sweep on the fv family.
func buildStencilSpans(p *Plan) {
	sd := p.stencil
	for bi := range p.views {
		v := &p.views[bi]
		bs := v.hi - v.lo
		loFast := -sd.dmin
		hiFast := bs - sd.dmax
		v.stSpans = v.stSpans[:0]
		for r := loFast; r < hiFast; {
			if !sd.interior[v.lo+r] {
				r++
				continue
			}
			s := r
			for r < hiFast && sd.interior[v.lo+r] {
				r++
			}
			v.stSpans = append(v.stSpans, rowSpan{int32(s), int32(r)})
		}
	}
}

// sellC is the SELL slice height: rows are processed in fixed chunks of
// sellC lanes, each slice padded to its longest row. 8 lanes keep the
// padded waste low on the block-local sub-matrices while giving the
// compiler a fixed-trip inner loop over contiguous memory.
const sellC = 8

// sellBlock is one block's local sub-matrix (diagonal excluded, columns
// block-local — the same entries as blockView.locCols/locVal) in sliced
// ELLPACK layout: slice s covers rows [s·C, (s+1)·C), its entries live in
// cols/vals[sliceOff[s]:sliceOff[s+1]] slot-major (slot · C + lane), padded
// with column −1. The −1 sentinel is skipped by a branch rather than
// multiplied by zero, so padding can never perturb the floating-point
// result (−0.0, NaN and Inf in the iterate stay CSR-identical).
type sellBlock struct {
	sliceOff []int32
	cols     []int32
	vals     []float64
}

func (sb *sellBlock) memoryBytes() int64 {
	const w, w32 = 8, 4
	return w32*int64(len(sb.sliceOff)+len(sb.cols)) + w*int64(len(sb.vals))
}

// buildSell lays v's packed local entries out in SELL-C slices.
func buildSell(v *blockView) *sellBlock {
	bs := v.hi - v.lo
	ns := (bs + sellC - 1) / sellC
	sb := &sellBlock{sliceOff: make([]int32, ns+1)}
	total := 0
	for s := 0; s < ns; s++ {
		w := 0
		for r := s * sellC; r < bs && r < (s+1)*sellC; r++ {
			if l := int(v.locPtr[r+1] - v.locPtr[r]); l > w {
				w = l
			}
		}
		total += w * sellC
		sb.sliceOff[s+1] = int32(total)
	}
	sb.cols = make([]int32, total)
	sb.vals = make([]float64, total)
	for i := range sb.cols {
		sb.cols[i] = -1
	}
	for s := 0; s < ns; s++ {
		base := int(sb.sliceOff[s])
		for r := s * sellC; r < bs && r < (s+1)*sellC; r++ {
			lane := r - s*sellC
			slot := 0
			for e := v.locPtr[r]; e < v.locPtr[r+1]; e++ {
				sb.cols[base+slot*sellC+lane] = v.locCols[e]
				sb.vals[base+slot*sellC+lane] = v.locVal[e]
				slot++
			}
		}
	}
	return sb
}

// resolveKernel decides the plan's kernel and builds its data. Called from
// plan construction after the views are staged.
func (p *Plan) resolveKernel(cfg PlanConfig) error {
	kind := cfg.Kernel
	if kind == KernelAuto && cfg.Stencil != nil {
		kind = KernelStencil
	}
	switch kind {
	case KernelAuto:
		p.kernel = KernelCSR
		if p.staged && !p.exactLocal {
			if si, ok := sparse.DetectStencil(p.a); ok {
				p.stencil = newStencilData(si)
				p.kernel = KernelStencil
				buildStencilSpans(p)
			}
		}
		return nil
	case KernelCSR:
		p.kernel = KernelCSR
		return nil
	case KernelStencil:
		if !p.staged {
			return fmt.Errorf("core: stencil kernel needs packed staging (column indices exceed int32)")
		}
		if cfg.Stencil != nil {
			si, err := sparse.MatchStencil(p.a, *cfg.Stencil)
			if err != nil {
				return err
			}
			if si.InteriorRows == 0 {
				return fmt.Errorf("core: declared stencil (offsets %v) matches no row of the matrix",
					cfg.Stencil.Offsets)
			}
			p.stencil = newStencilData(si)
		} else {
			si, ok := sparse.DetectStencil(p.a)
			if !ok {
				return fmt.Errorf("core: no constant-coefficient stencil structure detected; declare a StencilSpec or use the csr kernel")
			}
			p.stencil = newStencilData(si)
		}
		p.kernel = KernelStencil
		buildStencilSpans(p)
		return nil
	case KernelSELL:
		if !p.staged {
			return fmt.Errorf("core: sell kernel needs packed staging (column indices exceed int32)")
		}
		for bi := range p.views {
			p.views[bi].sell = buildSell(&p.views[bi])
		}
		p.kernel = KernelSELL
		return nil
	}
	return fmt.Errorf("core: unknown kernel kind %v", cfg.Kernel)
}

// Kernel returns the resolved sweep kernel the plan dispatches.
func (p *Plan) Kernel() KernelKind { return p.kernel }

// StencilInfo returns the stencil the plan's kernel uses (detected or
// declared), or nil when the plan does not run the stencil kernel.
func (p *Plan) StencilInfo() *sparse.StencilInfo {
	if p.stencil == nil {
		return nil
	}
	return p.stencil.info
}

// SELLSlotRatio returns padded slots / stored entries of the SELL layout
// (≥ 1; the padding overhead the tuner prices), or 0 when the plan does not
// run the SELL kernel.
func (p *Plan) SELLSlotRatio() float64 {
	if p.kernel != KernelSELL {
		return 0
	}
	var slots, nnz int64
	for bi := range p.views {
		v := &p.views[bi]
		if v.sell == nil {
			continue
		}
		slots += int64(len(v.sell.vals))
		nnz += int64(v.locPtr[v.hi-v.lo])
	}
	if nnz == 0 {
		return 1
	}
	return float64(slots) / float64(nnz)
}
