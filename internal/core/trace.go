package core

import "fmt"

// Trace aggregates the Chazan–Miranker characterization of a simulated
// asynchronous run: the update function u(·) (which component/block was
// updated at each step) and the shift function s(·,·) (how stale each read
// value was, in global iterations).
//
// The well-posedness conditions of §2.2 are:
//
//	(1) u(·) takes every component index infinitely often — here: every
//	    block is updated in every global iteration (unless deliberately
//	    skipped by fault injection);
//	(2) the shift function is bounded: 0 ≤ s(k,i) ≤ s̄ for some finite s̄,
//	    and s(k,i) ≤ k initially.
//
// Validate checks both from the recorded statistics.
type Trace struct {
	// UpdatesPerBlock counts kernel executions per block.
	UpdatesPerBlock []int
	// GlobalIterations is the number of completed global iterations.
	GlobalIterations int
	// MaxShift is the largest observed read staleness, in global
	// iterations (0 = the freshest possible value was read).
	MaxShift int
	// TotalReads and StaleReads count off-block component reads and how
	// many of them observed a stale (snapshot) value.
	TotalReads, StaleReads int64
	// ShiftCounts histograms the observed shifts: ShiftCounts[s] = number
	// of reads that saw a value s global iterations old. The empirical
	// distribution of the Chazan–Miranker shift function.
	ShiftCounts map[int]int64
	// SkippedUpdates counts block executions suppressed by SkipBlock.
	SkippedUpdates int
}

// Validate checks the Chazan–Miranker conditions against the recorded run.
// maxShiftBound is the s̄ the caller wants enforced; pass a negative value
// to accept any finite shift. A run with fault injection (skipped blocks
// never reassigned) legitimately fails condition (1); Validate reports
// that.
func (t *Trace) Validate(maxShiftBound int) error {
	if t.GlobalIterations == 0 {
		return fmt.Errorf("core: trace has no completed iterations")
	}
	// Condition (1): fairness. Every block must keep being updated; with
	// per-iteration sweeps this means counts equal GlobalIterations unless
	// skipped.
	for b, c := range t.UpdatesPerBlock {
		if c+t.skipAllowance() < t.GlobalIterations {
			return fmt.Errorf("core: block %d updated only %d times in %d iterations (condition 1 violated)",
				b, c, t.GlobalIterations)
		}
	}
	// Condition (2): bounded shift.
	if t.MaxShift < 0 {
		return fmt.Errorf("core: negative shift %d recorded", t.MaxShift)
	}
	if maxShiftBound >= 0 && t.MaxShift > maxShiftBound {
		return fmt.Errorf("core: observed shift %d exceeds bound %d (condition 2 violated)",
			t.MaxShift, maxShiftBound)
	}
	return nil
}

// skipAllowance returns the per-block slack tolerated by the fairness
// check. Without fault injection it is zero.
func (t *Trace) skipAllowance() int { return t.SkippedUpdates }

// MeanShift returns the average observed read staleness in global
// iterations.
func (t *Trace) MeanShift() float64 {
	var total, weighted int64
	for s, c := range t.ShiftCounts {
		total += c
		weighted += int64(s) * c
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}

// StaleFraction returns the fraction of off-block reads that observed a
// stale value.
func (t *Trace) StaleFraction() float64 {
	if t.TotalReads == 0 {
		return 0
	}
	return float64(t.StaleReads) / float64(t.TotalReads)
}
