package core

// ChaosHooks injects adversarial scheduling perturbations into the
// engines. The asynchronous convergence theory (Strikwerda's ρ(|B|) < 1
// condition in CheckConvergence) quantifies over *all* admissible update
// orderings, but the engines' natural chaos only samples a narrow
// neighbourhood of the hardware's recurring pattern — chaos hooks widen
// the sampled ordering space on purpose. All hooks may be nil; each is
// ignored by engines it does not apply to. Hooks must be safe for
// concurrent use (the goroutine and free-running engines call Delay from
// multiple workers).
//
// Package fault provides a seeded implementation (fault.Chaos);
// internal/service exposes it per job behind a debug flag.
type ChaosHooks struct {
	// Delay runs before each block execution and may sleep or yield to
	// perturb the interleaving (concurrent engines) or just observe the
	// execution (simulated engine).
	Delay func(iter, block int)
	// Reorder may permute one global iteration's dispatch order in place
	// (barrier engines only — the free-running engine has no dispatch
	// order to permute).
	Reorder func(iter int, order []int)
	// StaleRead forces a block to read the iteration-start snapshot — a
	// maximally late dispatch (simulated engine only; the concurrent
	// engines' staleness is physical, not modeled).
	StaleRead func(iter, block int) bool
}

// delay invokes the Delay hook if configured, counting the injection.
func (c *ChaosHooks) delay(em *engineCounters, iter, block int) {
	if c != nil && c.Delay != nil {
		em.addChaos()
		c.Delay(iter, block)
	}
}

// reorder invokes the Reorder hook if configured, counting the injection.
func (c *ChaosHooks) reorder(em *engineCounters, iter int, order []int) {
	if c != nil && c.Reorder != nil {
		em.addChaos()
		c.Reorder(iter, order)
	}
}

// staleRead reports whether the StaleRead hook forces a snapshot read,
// counting each forced read as an injection.
func (c *ChaosHooks) staleRead(em *engineCounters, iter, block int) bool {
	if c != nil && c.StaleRead != nil && c.StaleRead(iter, block) {
		em.addChaos()
		return true
	}
	return false
}
