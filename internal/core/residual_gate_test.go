package core

import (
	"testing"

	"repro/internal/mats"
)

// TestResidualEveryConverges pins the semantics of the incremental residual
// gate: a gated solve must still converge (convergence is only declared
// from exact checks), its reported residual must be exact (≤ tolerance),
// and the deferral can cost at most ResidualEvery−1 extra iterations over
// the per-iteration checking baseline.
func TestResidualEveryConverges(t *testing.T) {
	a := mats.Trefethen(400)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	base := Options{
		BlockSize: 64, LocalIters: 3, MaxGlobalIters: 500,
		Tolerance: 1e-8, Seed: 21,
	}
	exact, err := Solve(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Converged {
		t.Fatalf("baseline did not converge (residual %g)", exact.Residual)
	}
	for _, every := range []int{2, 5, 10} {
		opt := base
		opt.ResidualEvery = every
		res, err := Solve(a, b, opt)
		if err != nil {
			t.Fatalf("ResidualEvery=%d: %v", every, err)
		}
		if !res.Converged {
			t.Fatalf("ResidualEvery=%d: did not converge (residual %g)", every, res.Residual)
		}
		if res.Residual > base.Tolerance {
			t.Fatalf("ResidualEvery=%d: reported residual %g above tolerance %g (must be an exact value)",
				every, res.Residual, base.Tolerance)
		}
		if res.GlobalIterations < exact.GlobalIterations {
			t.Fatalf("ResidualEvery=%d: converged in %d iterations, baseline %d — the gate can only defer checks",
				every, res.GlobalIterations, exact.GlobalIterations)
		}
		if res.GlobalIterations >= exact.GlobalIterations+every {
			t.Fatalf("ResidualEvery=%d: %d iterations vs baseline %d exceeds the ≤%d-iteration deferral bound",
				every, res.GlobalIterations, exact.GlobalIterations, every-1)
		}
	}
}

// TestResidualEveryDisabledByHistory pins the self-disabling rule: when the
// per-iteration residual is itself an output (RecordHistory), the gate must
// keep exact checks every iteration.
func TestResidualEveryDisabledByHistory(t *testing.T) {
	a := mats.Trefethen(200)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	res, err := Solve(a, b, Options{
		BlockSize: 64, LocalIters: 2, MaxGlobalIters: 40,
		Tolerance: 1e-10, ResidualEvery: 7, RecordHistory: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.GlobalIterations {
		t.Fatalf("history has %d entries for %d iterations; RecordHistory must disable the residual gate",
			len(res.History), res.GlobalIterations)
	}
}

// TestResidualEveryGoroutineEngine runs the gate through the concurrent
// engine: the estimate's anchors come from racing block updates there, so
// this exercises the atomic accumulation path end to end.
func TestResidualEveryGoroutineEngine(t *testing.T) {
	a := mats.Trefethen(400)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	res, err := Solve(a, b, Options{
		BlockSize: 64, LocalIters: 3, MaxGlobalIters: 500,
		Tolerance: 1e-8, ResidualEvery: 5, Engine: EngineGoroutine, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Residual > 1e-8 {
		t.Fatalf("goroutine engine with gate: converged=%v residual=%g", res.Converged, res.Residual)
	}
}
