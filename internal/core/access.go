package core

// VectorAccess grants element-wise read/write access to the solver's
// iterate, independent of the engine's storage (plain slice for the
// simulated engine, per-component atomics for the goroutine engine). It is
// the parameter type of Options.AfterIteration.
type VectorAccess interface {
	Len() int
	Get(i int) float64
	Set(i int, v float64)
}

// sliceAccess adapts a []float64.
type sliceAccess []float64

func (s sliceAccess) Len() int             { return len(s) }
func (s sliceAccess) Get(i int) float64    { return s[i] }
func (s sliceAccess) Set(i int, v float64) { s[i] = v }

// atomicAccess adapts an *AtomicVector.
type atomicAccess struct{ v *AtomicVector }

func (a atomicAccess) Len() int             { return a.v.Len() }
func (a atomicAccess) Get(i int) float64    { return a.v.Load(i) }
func (a atomicAccess) Set(i int, v float64) { a.v.Store(i, v) }
