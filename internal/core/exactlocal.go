package core

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Options.ExactLocal selects the k→∞ limit of the paper's local-iteration
// trade-off (§4.3): instead of k Jacobi sweeps, each block solves its
// subdomain system A_JJ x_J = b_J − A_J,off x_off *exactly* via a
// pre-factored dense LU — the classical block-Jacobi (additive Schwarz)
// method, here still executed under the chaotic block schedule. It bounds
// from above what any finite k can achieve and quantifies how close the
// paper's async-(5) gets.

// blockFactors holds one dense LU per block plus scratch.
type blockFactors struct {
	lu []*dense.LU
}

// buildBlockFactors extracts and factors every block's diagonal submatrix.
// Returns an error if any submatrix is singular (cannot happen for SPD A).
// This is the dominant setup cost of an exact-local solve,
// O(numBlocks·blockSize³); it runs once in NewPlan — never per solve — so
// a cached plan (internal/service) amortizes it across requests.
func buildBlockFactors(a *sparse.CSR, part sparse.BlockPartition, views []blockView) (*blockFactors, error) {
	bf := &blockFactors{lu: make([]*dense.LU, part.NumBlocks())}
	for bi := range bf.lu {
		v := &views[bi]
		bs := v.hi - v.lo
		m := dense.NewMatrix(bs, bs)
		for i := v.lo; i < v.hi; i++ {
			r := i - v.lo
			for p := v.inLo[r]; p < v.inHi[r]; p++ {
				m.Set(r, a.ColIdx[p]-v.lo, a.Val[p])
			}
		}
		lu, err := dense.Factor(m)
		if err != nil {
			return nil, fmt.Errorf("core: block %d (%d rows): %w", bi, bs, err)
		}
		bf.lu[bi] = lu
	}
	return bf, nil
}

// runBlockExact executes one block with an exact local solve: the
// off-block contribution is assembled from the (possibly stale) reader and
// the pre-factored subdomain system is solved directly.
func runBlockExact(a *sparse.CSR, b []float64, v *blockView, lu *dense.LU,
	offRead valueReader, write valueWriter, scr *kernelScratch) error {

	bs := v.hi - v.lo
	rhs := scr.s[:bs]
	for i := v.lo; i < v.hi; i++ {
		r := i - v.lo
		acc := b[i]
		for p := a.RowPtr[i]; p < v.inLo[r]; p++ {
			acc -= a.Val[p] * offRead.Load(a.ColIdx[p])
		}
		for p := v.inHi[r]; p < a.RowPtr[i+1]; p++ {
			acc -= a.Val[p] * offRead.Load(a.ColIdx[p])
		}
		rhs[r] = acc
	}
	sol := scr.xnew[:bs]
	if err := lu.Solve(sol, rhs); err != nil {
		return err
	}
	for i := v.lo; i < v.hi; i++ {
		write.Store(i, sol[i-v.lo])
	}
	return nil
}
