package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/mats"
	"repro/internal/sched"
	"repro/internal/vecmath"
)

// TestShardedSequentialMatchesGoroutine is the substrate's anchor property:
// with live views (nil provider) and sequential execution, the sharded
// executor performs the identical operation sequence as the goroutine
// engine with one worker — same seeded dispatch order, same reads, same
// writes — so the iterates must agree bit for bit.
func TestShardedSequentialMatchesGoroutine(t *testing.T) {
	a := mats.Trefethen(500)
	b := onesRHS(a)
	opt := Options{
		BlockSize:      32,
		LocalIters:     3,
		MaxGlobalIters: 300,
		Tolerance:      1e-8,
		Seed:           7,
	}
	ref := opt
	ref.Engine = EngineGoroutine
	ref.Workers = 1
	want, err := Solve(a, b, ref)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(a, opt.BlockSize, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		got, err := SolveSharded(p, b, opt, ShardOptions{Shards: shards, Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.GlobalIterations != want.GlobalIterations {
			t.Errorf("%d shards: %d iterations, goroutine engine took %d",
				shards, got.GlobalIterations, want.GlobalIterations)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("%d shards: X[%d] = %v, want bit-identical %v", shards, i, got.X[i], want.X[i])
			}
		}
	}
}

// TestShardedConcurrentConverges exercises the concurrent path (one
// goroutine per shard, live off-shard reads) — with -race this is the
// executor's data-race stress case.
func TestShardedConcurrentConverges(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		BlockSize:      25,
		LocalIters:     2,
		MaxGlobalIters: 3000,
		Tolerance:      1e-9,
		Seed:           3,
	}
	res, err := SolveSharded(p, b, opt, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g", res.Residual)
	}
	for i, v := range res.X {
		if d := v - 1; d > 1e-6 || d < -1e-6 {
			t.Fatalf("X[%d] = %v, want ≈1", i, v)
		}
	}
}

// publishCounter verifies the provider contract: Publish fires exactly once
// per shard per iteration, including for shards SkipShard suppressed.
type publishCounter struct {
	mu     sync.Mutex
	counts map[int]int
	iters  int
}

func (p *publishCounter) Bind(x *AtomicVector, shards []Shard) {}
func (p *publishCounter) View(shard, iter int) IterateView     { return nil }
func (p *publishCounter) Publish(shard, iter int) {
	p.mu.Lock()
	p.counts[shard]++
	if iter > p.iters { // iterations are 1-based
		p.iters = iter
	}
	p.mu.Unlock()
}

func TestShardedSkippedShardsStillPublish(t *testing.T) {
	a := mats.Trefethen(200)
	b := onesRHS(a)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	prov := &publishCounter{counts: make(map[int]int)}
	_, err = SolveSharded(p, b, Options{
		BlockSize:      25,
		LocalIters:     2,
		MaxGlobalIters: 20,
		Seed:           1,
	}, ShardOptions{
		Shards:    4,
		Provider:  prov,
		SkipShard: func(iter, shard int) bool { return shard == 2 && iter < 10 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if prov.iters != 20 {
		t.Fatalf("saw %d iterations, want 20", prov.iters)
	}
	for s := 0; s < 4; s++ {
		if prov.counts[s] != 20 {
			t.Errorf("shard %d published %d times, want once per iteration (20)", s, prov.counts[s])
		}
	}
}

func TestShardedValidation(t *testing.T) {
	a := mats.Poisson2D(8, 8)
	b := onesRHS(a)
	p, err := NewPlan(a, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{BlockSize: 8, LocalIters: 1, MaxGlobalIters: 1}

	if _, err := SolveSharded(p, b, opt, ShardOptions{Shards: 0}); err == nil {
		t.Error("expected error for 0 shards")
	}
	if _, err := SolveSharded(p, b, opt, ShardOptions{Shards: p.NumBlocks() + 1}); err == nil {
		t.Error("expected error for more shards than blocks")
	}
	bad := opt
	bad.BlockSize = 16
	if _, err := SolveSharded(p, b, bad, ShardOptions{Shards: 1}); err == nil {
		t.Error("expected error for BlockSize/plan mismatch")
	}
	replay := opt
	replay.Replay = &sched.Schedule{}
	_, err = SolveSharded(p, b, replay, ShardOptions{Shards: 1})
	if err == nil || !strings.Contains(err.Error(), "replay") {
		t.Errorf("replay must be rejected, got %v", err)
	}
}

// TestShardedRecordReplaysOnSimulatedEngine closes the observability loop:
// a schedule captured from a sharded run replays on the barrier replay
// path (epoch-grouped), reproducing the same block sequence.
func TestShardedRecordReplays(t *testing.T) {
	a := mats.Trefethen(200)
	b := onesRHS(a)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := sched.NewRecorder(0)
	opt := Options{
		BlockSize:      25,
		LocalIters:     2,
		MaxGlobalIters: 40,
		Tolerance:      1e-8,
		Seed:           9,
		Record:         rec,
	}
	live, err := SolveSharded(p, b, opt, ShardOptions{Shards: 4, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Schedule()
	if s.Meta.Engine != "sharded" {
		t.Fatalf("captured engine %q, want sharded", s.Meta.Engine)
	}
	rep, err := Solve(a, b, Options{
		BlockSize:      25,
		LocalIters:     2,
		MaxGlobalIters: 40,
		Replay:         s,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GlobalIterations != live.GlobalIterations {
		t.Errorf("replay took %d iterations, live %d", rep.GlobalIterations, live.GlobalIterations)
	}
	// A concurrent-engine capture replays as a canonical deterministic
	// execution of the recorded block sequence (not bit-for-bit — the
	// barrier replay path reads through its own snapshot semantics), so
	// the iterates agree to well below the stopping tolerance, not exactly.
	diff := make([]float64, len(live.X))
	vecmath.Sub(diff, rep.X, live.X)
	if d := vecmath.Nrm2(diff); d > 1e-5*vecmath.Nrm2(live.X) {
		t.Errorf("replayed iterate differs from live by %g", d)
	}
}
