package core

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/certify"
	"repro/internal/mats"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// methodCases are the systems the method-equivalence suite sweeps: one
// matrix per kernel family (9-point fv stencil, 5-point Poisson stencil,
// banded Trefethen — no stencil, so SELL/CSR only).
func methodCases() []struct {
	name string
	a    *sparse.CSR
	bs   int
} {
	return []struct {
		name string
		a    *sparse.CSR
		bs   int
	}{
		{"fv_20x16", mats.FV(20, 16, 1.368), 64},
		{"poisson_15", mats.Poisson2D(15, 15), 45},
		{"trefethen_500", mats.Trefethen(500), 96},
	}
}

func methodKernels(a *sparse.CSR) []KernelKind {
	ks := []KernelKind{KernelCSR, KernelSELL}
	if _, ok := sparse.DetectStencil(a); ok {
		ks = append(ks, KernelStencil)
	}
	return ks
}

func methodRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%5)/3
	}
	return b
}

// hashIterate folds the iterate bits and residual into one comparable
// word — the golden-fixture format of the pre-refactor pinning below.
func hashIterate(x []float64, residual float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range x {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(residual))
	h.Write(buf[:])
	return h.Sum64()
}

// TestJacobiGoldenPreRefactor pins the deterministic engines to iterate
// hashes recorded on the tree immediately before the update-rule seam was
// extracted (commit "Add sweep-kernel dispatch ..."): the refactored
// jacobi path must stay bit-identical to the monolithic kernels it
// replaced, per kernel and per engine. The racy live engines (goroutine,
// free-running) are pinned by the replay-based checks below instead.
func TestJacobiGoldenPreRefactor(t *testing.T) {
	golden := map[string]uint64{
		"fv_20x16/simulated":      0xd916d8cad0e3a3f5,
		"fv_20x16/sharded":        0x5965fbfceb04f4a7,
		"poisson_15/simulated":    0x0b09e4ab027efe09,
		"poisson_15/sharded":      0xfb01042e639469c5,
		"trefethen_500/simulated": 0xac07e213543234bb,
		"trefethen_500/sharded":   0xe4e1ea97186b84f5,
	}
	for _, tc := range methodCases() {
		b := methodRHS(tc.a.Rows)
		opt := Options{
			BlockSize: tc.bs, LocalIters: 3, Omega: 0.9,
			MaxGlobalIters: 25, Seed: 5, StaleProb: 0.2,
		}
		for _, k := range methodKernels(tc.a) {
			res, err := SolveWithPlan(planForKernel(t, tc.a, tc.bs, k), b, opt)
			if err != nil {
				t.Fatalf("%s/%v simulated: %v", tc.name, k, err)
			}
			if got := hashIterate(res.X, res.Residual); got != golden[tc.name+"/simulated"] {
				t.Errorf("%s/%v simulated: hash %#x, pre-refactor golden %#x", tc.name, k, got, golden[tc.name+"/simulated"])
			}
			sres, err := SolveSharded(planForKernel(t, tc.a, tc.bs, k), b, opt, ShardOptions{Shards: 3, Sequential: true})
			if err != nil {
				t.Fatalf("%s/%v sharded: %v", tc.name, k, err)
			}
			if got := hashIterate(sres.X, sres.Residual); got != golden[tc.name+"/sharded"] {
				t.Errorf("%s/%v sharded: hash %#x, pre-refactor golden %#x", tc.name, k, got, golden[tc.name+"/sharded"])
			}
		}
	}
}

// TestMethodEquivalenceBetaZeroDeterministic is the seam's defining
// property on the deterministic engines: richardson2 with β = 0 must be
// bit-identical to jacobi — the momentum branch is gated on β ≠ 0, not on
// the rule kind, so a zero coefficient takes the literal jacobi code path
// (no fused-add rounding drift, no −0.0 artifacts) on every kernel.
func TestMethodEquivalenceBetaZeroDeterministic(t *testing.T) {
	for _, tc := range methodCases() {
		t.Run(tc.name, func(t *testing.T) {
			b := methodRHS(tc.a.Rows)
			base := Options{
				BlockSize: tc.bs, LocalIters: 3, Omega: 0.9,
				MaxGlobalIters: 25, RecordHistory: true, Seed: 5, StaleProb: 0.2,
			}
			mom := base
			mom.Method, mom.Beta = RuleRichardson2, 0
			for _, k := range methodKernels(tc.a) {
				jac, err := SolveWithPlan(planForKernel(t, tc.a, tc.bs, k), b, base)
				if err != nil {
					t.Fatalf("jacobi (%v): %v", k, err)
				}
				r2, err := SolveWithPlan(planForKernel(t, tc.a, tc.bs, k), b, mom)
				if err != nil {
					t.Fatalf("richardson2 β=0 (%v): %v", k, err)
				}
				requireBitIdentical(t, r2, jac)

				sj, err := SolveSharded(planForKernel(t, tc.a, tc.bs, k), b, base, ShardOptions{Shards: 3, Sequential: true})
				if err != nil {
					t.Fatalf("sharded jacobi (%v): %v", k, err)
				}
				sr, err := SolveSharded(planForKernel(t, tc.a, tc.bs, k), b, mom, ShardOptions{Shards: 3, Sequential: true})
				if err != nil {
					t.Fatalf("sharded richardson2 β=0 (%v): %v", k, err)
				}
				requireBitIdentical(t, sr, sj)
			}
		})
	}
}

// TestMethodEquivalenceBetaZeroReplay extends the β = 0 identity to the
// live engines through their replay paths: one schedule recorded from a
// concurrent jacobi run (goroutine; free-running) is replayed under both
// rules, so the comparison sees a real interleaving rather than the
// sequential emulation.
func TestMethodEquivalenceBetaZeroReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay equivalence is not part of the -short gate")
	}
	for _, tc := range methodCases() {
		t.Run(tc.name, func(t *testing.T) {
			b := methodRHS(tc.a.Rows)

			rec := sched.NewRecorder(0)
			recOpt := Options{
				BlockSize: tc.bs, LocalIters: 2, MaxGlobalIters: 12,
				Engine: EngineGoroutine, Seed: 11, Workers: 4, Record: rec,
			}
			if _, err := Solve(tc.a, b, recOpt); err != nil {
				t.Fatalf("record goroutine: %v", err)
			}
			gs := rec.Schedule()
			for _, k := range methodKernels(tc.a) {
				opt := Options{
					BlockSize: tc.bs, LocalIters: 2, MaxGlobalIters: 12,
					Engine: EngineGoroutine, Replay: gs, RecordHistory: true,
				}
				jac, err := SolveWithPlan(planForKernel(t, tc.a, tc.bs, k), b, opt)
				if err != nil {
					t.Fatalf("replay jacobi (%v): %v", k, err)
				}
				opt.Method, opt.Beta = RuleRichardson2, 0
				r2, err := SolveWithPlan(planForKernel(t, tc.a, tc.bs, k), b, opt)
				if err != nil {
					t.Fatalf("replay richardson2 β=0 (%v): %v", k, err)
				}
				requireBitIdentical(t, r2, jac)
			}

			rec = sched.NewRecorder(0)
			if _, err := SolveFreeRunning(tc.a, b, FreeRunningOptions{
				BlockSize: tc.bs, LocalIters: 2, MaxBlockUpdates: 300,
				Tolerance: 1e-12, Workers: 3, Record: rec,
			}); err != nil {
				t.Fatalf("record free-running: %v", err)
			}
			fs := rec.Schedule()
			for _, k := range methodKernels(tc.a) {
				fopt := FreeRunningOptions{
					BlockSize: tc.bs, LocalIters: 2, Tolerance: 1e-12, Replay: fs,
				}
				jac, err := SolveFreeRunningWithPlan(planForKernel(t, tc.a, tc.bs, k), b, fopt)
				if err != nil {
					t.Fatalf("freerun replay jacobi (%v): %v", k, err)
				}
				fopt.Method, fopt.Beta = RuleRichardson2, 0
				r2, err := SolveFreeRunningWithPlan(planForKernel(t, tc.a, tc.bs, k), b, fopt)
				if err != nil {
					t.Fatalf("freerun replay richardson2 β=0 (%v): %v", k, err)
				}
				for j := range r2.X {
					if math.Float64bits(r2.X[j]) != math.Float64bits(jac.X[j]) {
						t.Fatalf("freerun (%v): x[%d] = %v, jacobi %v", k, j, r2.X[j], jac.X[j])
					}
				}
				if math.Float64bits(r2.Residual) != math.Float64bits(jac.Residual) {
					t.Fatalf("freerun (%v): residual %v, jacobi %v", k, r2.Residual, jac.Residual)
				}
			}
		})
	}
}

// TestMomentumConvergesWhereCertified is the momentum safety property the
// docs promise: on any system the admission certifier classifies as
// Converges, the second-order rule must not diverge under chaotic
// replayed schedules for any admissible β — momentum may trade iterations
// but never turns a certified system divergent.
func TestMomentumConvergesWhereCertified(t *testing.T) {
	betas := []float64{0.1, 0.3, 0.5, 0.8}
	if testing.Short() {
		betas = []float64{0.3}
	}
	for _, tc := range methodCases() {
		t.Run(tc.name, func(t *testing.T) {
			cert, err := certify.Certify(tc.a, certify.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if cert.Verdict != certify.VerdictConverges {
				t.Skipf("certifier verdict %v; property only binds certified systems", cert.Verdict)
			}
			b := methodRHS(tc.a.Rows)

			// One recorded concurrent schedule per system: every β replays
			// the same chaotic interleaving, so a divergence would be
			// attributable to momentum alone.
			rec := sched.NewRecorder(0)
			if _, err := Solve(tc.a, b, Options{
				BlockSize: tc.bs, LocalIters: 3, MaxGlobalIters: 60,
				Engine: EngineGoroutine, Seed: 17, Workers: 4, Record: rec,
			}); err != nil {
				t.Fatalf("record: %v", err)
			}
			s := rec.Schedule()

			base, err := Solve(tc.a, b, Options{
				BlockSize: tc.bs, LocalIters: 3, MaxGlobalIters: 60,
				Engine: EngineGoroutine, Replay: s,
			})
			if err != nil {
				t.Fatalf("replay jacobi: %v", err)
			}
			for _, beta := range betas {
				res, err := Solve(tc.a, b, Options{
					BlockSize: tc.bs, LocalIters: 3, MaxGlobalIters: 60,
					Engine: EngineGoroutine, Replay: s,
					Method: RuleRichardson2, Beta: beta,
				})
				if err != nil && errors.Is(err, ErrDiverged) {
					t.Fatalf("β=%.2f: momentum diverged on a certified system: %v", beta, err)
				}
				if err != nil {
					t.Fatalf("β=%.2f: %v", beta, err)
				}
				if math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
					t.Fatalf("β=%.2f: non-finite residual %v", beta, res.Residual)
				}
				if res.Residual > 10*base.Residual && res.Residual > 1e-6 {
					t.Errorf("β=%.2f: residual %.3e far above jacobi's %.3e on a certified system",
						beta, res.Residual, base.Residual)
				}
			}
		})
	}
}
