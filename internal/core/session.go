package core

import "fmt"

// Session is the warm-start entry point for streaming solve workloads:
// one plan, many right-hand sides, each step seeded with the previous
// step's iterate. It is the core-side state behind the service's
// POST /v1/sessions API — a time-stepping PDE client streams one RHS per
// time step and the asynchronous iteration only has to correct the
// *change* since the last step, which is the regime where the paper's
// cheap local sweeps pay off hardest (Lee & Bhattacharya's asynchronous
// 1D heat equation runs exactly this loop).
//
// A Session is NOT safe for concurrent use: steps are ordered by
// definition (step i+1 starts from step i's iterate), so the caller must
// serialize Step calls. internal/service holds one mutex per session for
// exactly this.
type Session struct {
	p    *Plan
	warm []float64 // last adopted iterate; nil until the first success
	// momentum is the last adopted momentum trail of a RuleRichardson2
	// session; re-injected as MomentumGuess so the second-order recurrence
	// continues seamlessly across steps. Nil for first-order sessions.
	momentum []float64
	steps    int
}

// NewSession wraps a prepared plan in fresh session state. The first Step
// is a cold solve (zero initial guess); every later Step warm-starts from
// the previous step's result.
func NewSession(p *Plan) *Session {
	return &Session{p: p}
}

// Step solves the session's system for the next right-hand side. The
// session injects its retained iterate as Options.InitialGuess — callers
// must leave InitialGuess nil (a caller-supplied guess would silently
// defeat the warm-start contract, so it is rejected loudly instead).
//
// On success the step's solution becomes the warm start of the next Step.
// On error — including ErrNotConverged and cancellation — the previous
// warm iterate is kept, so a failed or abandoned step never poisons the
// session state: retrying the same RHS starts from the same place.
func (s *Session) Step(b []float64, opt Options) (Result, error) {
	if opt.InitialGuess != nil {
		return Result{}, fmt.Errorf("core: Session.Step manages InitialGuess itself; leave Options.InitialGuess nil")
	}
	if opt.MomentumGuess != nil {
		return Result{}, fmt.Errorf("core: Session.Step manages MomentumGuess itself; leave Options.MomentumGuess nil")
	}
	if s.warm != nil {
		opt.InitialGuess = s.warm
	}
	if s.momentum != nil && opt.Beta != 0 {
		opt.MomentumGuess = s.momentum
	}
	res, err := SolveWithPlan(s.p, b, opt)
	if err != nil {
		return res, err
	}
	// Adopt, don't copy: SolveWithPlan returns a freshly allocated iterate
	// (and momentum trail), and the engines never write through
	// Options.InitialGuess or Options.MomentumGuess.
	s.warm = res.X
	s.momentum = res.Momentum
	s.steps++
	return res, nil
}

// Reset drops the warm iterate, momentum trail and step count; the next
// Step is cold.
func (s *Session) Reset() {
	s.warm = nil
	s.momentum = nil
	s.steps = 0
}

// Warm returns the iterate the next Step will start from (nil before the
// first successful step). The slice is the live session state — callers
// must not modify it.
func (s *Session) Warm() []float64 { return s.warm }

// Steps returns the number of successful steps taken since creation (or
// the last Reset).
func (s *Session) Steps() int { return s.steps }

// Plan returns the plan the session iterates with.
func (s *Session) Plan() *Plan { return s.p }
