package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/sparse"
)

// Shard describes one executor shard: a contiguous run of plan blocks and
// the iterate rows they cover. The multi-device executor maps one shard per
// GPU, the cluster executor one shard per node.
type Shard struct {
	// Index is the shard's position in [0, Shards).
	Index int
	// BlockLo and BlockHi bound the shard's plan blocks, [BlockLo, BlockHi).
	BlockLo, BlockHi int
	// RowLo and RowHi bound the iterate rows the shard owns, [RowLo, RowHi).
	RowLo, RowHi int
}

// ShardViewProvider realizes a substrate's staleness structure for the
// sharded executor: per shard and global iteration it supplies the
// IterateView the shard's off-shard reads go through, and a publication
// point where the shard's freshly written rows become visible to the
// exchange medium (host copies, a delay ring, ...). Rows the shard itself
// owns are always read live; only off-shard components route through the
// view.
//
// Call discipline (what implementations may rely on): Bind once before any
// iteration; View(s, iter) at most once per shard per iteration, from the
// goroutine executing shard s, before any of its blocks run; Publish(s,
// iter) exactly once per shard per iteration — even for shards skipped via
// ShardOptions.SkipShard — after the shard's blocks finished. Iterations
// are separated by a barrier, so all calls for iteration i happen before
// any call for iteration i+1.
type ShardViewProvider interface {
	// Bind hands the provider the live iterate and the shard layout before
	// the first iteration.
	Bind(x *AtomicVector, shards []Shard)
	// View returns the IterateView for shard's off-shard reads during
	// global iteration iter (1-based); nil selects live reads.
	View(shard, iter int) IterateView
	// Publish marks the end of shard's iteration iter: its rows in the
	// live iterate are final for this iteration and may be copied out.
	Publish(shard, iter int)
}

// ShardOptions configures the sharded executor on top of Options.
type ShardOptions struct {
	// Shards is the number of shards (devices, nodes). Required in
	// [1, plan blocks]: each shard needs at least one block.
	Shards int
	// Sequential executes the shards' blocks on one goroutine in the
	// global dispatch order instead of one goroutine per shard. With a
	// fixed Seed and live views this is deterministic — the equivalence
	// anchor the tests compare the concurrent paths against.
	Sequential bool
	// Provider supplies the off-shard read views; nil means all shards
	// read the live iterate (pure work partitioning, no staleness beyond
	// the execution races).
	Provider ShardViewProvider
	// SkipShard, if non-nil, is consulted once per shard per global
	// iteration; returning true skips all the shard's blocks for that
	// iteration (a dead or slow device). The shard still publishes, so
	// its last-written values keep circulating.
	SkipShard func(iter, shard int) bool
}

// SolveSharded runs async-(k) relaxation partitioned into shards: each
// shard executes its blocks (concurrently per shard by default), reading
// off-shard components through the provider's views and publishing its rows
// at the end of every global iteration. It is the execution substrate the
// multi-device (internal/multigpu) and cluster (internal/cluster) executors
// are built on: with one shard — or live views — it degenerates to exactly
// the goroutine engine's iteration, which the equivalence tests exploit.
//
// opt follows the SolveWithPlan contract (BlockSize/ExactLocal must match
// the plan); Options.Replay is not supported — replay a sharded capture
// through the simulated or goroutine engine.
func SolveSharded(p *Plan, b []float64, opt Options, so ShardOptions) (Result, error) {
	if opt.BlockSize == 0 {
		opt.BlockSize = p.blockSize
	}
	if opt.BlockSize != p.blockSize {
		return Result{}, fmt.Errorf("core: Options.BlockSize %d does not match plan block size %d",
			opt.BlockSize, p.blockSize)
	}
	if opt.ExactLocal != p.exactLocal {
		return Result{}, fmt.Errorf("core: Options.ExactLocal %v does not match plan (exact local %v)",
			opt.ExactLocal, p.exactLocal)
	}
	opt = opt.withDefaults()
	if err := opt.validate(p.a, b); err != nil {
		return Result{}, err
	}
	if opt.Replay != nil {
		return Result{}, fmt.Errorf("core: the sharded executor does not replay schedules; replay a sharded capture through the simulated or goroutine engine")
	}
	nb := p.part.NumBlocks()
	if so.Shards <= 0 {
		return Result{}, fmt.Errorf("core: ShardOptions.Shards must be positive, have %d", so.Shards)
	}
	if so.Shards > nb {
		return Result{}, fmt.Errorf("core: %d shards over %d blocks: need at least one block per shard (reduce BlockSize)",
			so.Shards, nb)
	}
	if opt.Metrics != nil {
		defer func(start time.Time) {
			opt.Metrics.observeSolve("sharded", time.Since(start))
		}(time.Now())
	}
	return solveSharded(p, b, opt, so)
}

// makeShards splits the plan's blocks into ns contiguous shards of
// near-equal block count (the first nb%ns shards take one extra block).
func makeShards(part sparse.BlockPartition, ns int) []Shard {
	nb := part.NumBlocks()
	base, rem := nb/ns, nb%ns
	shards := make([]Shard, ns)
	lo := 0
	for s := range shards {
		hi := lo + base
		if s < rem {
			hi++
		}
		shards[s] = Shard{
			Index: s, BlockLo: lo, BlockHi: hi,
			RowLo: part.Starts[lo], RowHi: part.Starts[hi],
		}
		lo = hi
	}
	return shards
}

// shardView composes a shard's read semantics: rows the shard owns read
// live from the shared iterate, everything else through the provider's
// off-shard view.
type shardView struct {
	lo, hi int
	live   *AtomicVector
	off    IterateView
}

func (v *shardView) Load(j int) float64 {
	if j >= v.lo && j < v.hi {
		return v.live.Load(j)
	}
	return v.off.Load(j)
}

func solveSharded(p *Plan, b []float64, opt Options, so ShardOptions) (Result, error) {
	a, sp, part, views := p.a, p.sp, p.part, p.views

	n := a.Rows
	start := make([]float64, n)
	if opt.InitialGuess != nil {
		copy(start, opt.InitialGuess)
	}
	roundIterate(opt.Precision, start)
	x := NewAtomicVector(start)
	writer := iterateWriter(opt.Precision, valueWriter(x))
	nb := part.NumBlocks()
	ns := so.Shards
	shards := makeShards(part, ns)
	blockShard := make([]int, nb)
	for _, sh := range shards {
		for bi := sh.BlockLo; bi < sh.BlockHi; bi++ {
			blockShard[bi] = sh.Index
		}
	}
	res := Result{NumBlocks: nb}
	em := opt.Metrics.engine("sharded")
	if so.Provider != nil {
		so.Provider.Bind(x, shards)
	}
	if opt.Record != nil {
		opt.Record.SetMeta(barrierMeta("sharded", nb, ns, opt))
	}

	kern := p.kernelFor(opt.referenceKernel)
	factors := p.factors
	rule := newUpdateRule(opt.Method, opt.Omega, opt.Beta, opt.Precision, start, opt.MomentumGuess)
	sweeps := opt.LocalIters
	if opt.ExactLocal {
		sweeps = 0
	}

	// Per-shard state. The order/skip/read fields are written by the main
	// loop before dispatch and read by the shard's goroutine (the channel
	// send orders the accesses); view.off is owned by whichever goroutine
	// executes the shard.
	type shardState struct {
		order []int // this iteration's blocks, in global dispatch order
		skip  bool
		view  shardView
		read  valueReader
	}
	states := make([]shardState, ns)
	for s := range states {
		states[s].order = make([]int, 0, shards[s].BlockHi-shards[s].BlockLo)
		states[s].view = shardView{lo: shards[s].RowLo, hi: shards[s].RowHi, live: x}
	}

	var iterDelta atomicFloat // Σ‖Δx_J‖₂² of the current global iteration

	// shardRead composes shard s's off-shard reader for iteration iter.
	shardRead := func(s, iter int) valueReader {
		if so.Provider == nil {
			return x
		}
		v := so.Provider.View(s, iter)
		if v == nil {
			return x
		}
		st := &states[s]
		st.view.off = v
		return &st.view
	}
	// runBlock executes one block against the given off-shard reader; the
	// body matches the goroutine engine's worker exactly (chaos delay,
	// kernel or exact local solve, sweep counter, schedule event).
	runBlock := func(iter, bi, worker int, offRead valueReader, scr *kernelScratch) {
		opt.Chaos.delay(em, iter, bi)
		if sweeps == 0 {
			// A singular block would have failed at factorization; see the
			// goroutine engine.
			_ = runBlockExact(a, b, &views[bi], factors.lu[bi], offRead, writer, scr)
		} else {
			iterDelta.add(kern(a, sp, b, &views[bi], sweeps, rule, offRead, x, writer, scr))
		}
		em.addBlockSweep()
		if opt.Record != nil {
			opt.Record.Append(sched.Event{
				Epoch: int32(iter), Block: int32(bi),
				Sweeps: int32(sweeps), Worker: int16(worker),
			})
		}
	}
	// runShard is one shard's whole iteration on its own goroutine.
	runShard := func(s, iter int, scr *kernelScratch) {
		st := &states[s]
		if !st.skip {
			offRead := shardRead(s, iter)
			for _, bi := range st.order {
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					break
				}
				if opt.SkipBlock != nil && opt.SkipBlock(iter, bi) {
					continue
				}
				runBlock(iter, bi, s, offRead, scr)
			}
		}
		if so.Provider != nil {
			so.Provider.Publish(s, iter)
		}
	}

	// Persistent per-shard goroutines, fed one global iteration at a time;
	// the WaitGroup is the end-of-iteration barrier.
	var (
		work   []chan int
		wg     sync.WaitGroup
		poolWG sync.WaitGroup
	)
	if !so.Sequential {
		work = make([]chan int, ns)
		for s := 0; s < ns; s++ {
			work[s] = make(chan int)
			poolWG.Add(1)
			go func(s int) {
				defer poolWG.Done()
				scr := p.getKernelScratch()
				defer p.putKernelScratch(scr)
				for iter := range work[s] {
					runShard(s, iter, scr)
					wg.Done()
				}
			}(s)
		}
		defer func() {
			for _, c := range work {
				close(c)
			}
			poolWG.Wait()
		}()
	}

	maxIters := opt.MaxGlobalIters
	if opt.RecordHistory {
		res.History = make([]float64, 0, maxIters)
	}
	is := p.getIterScratch()
	defer p.putIterScratch(is)
	cs := newChaoticScheduler(opt, em, nb, is.order)
	rs := newResidualState(opt, p.factors != nil, is.resid)
	var seqScr *kernelScratch
	if so.Sequential {
		seqScr = p.getKernelScratch()
		defer p.putKernelScratch(seqScr)
	}
	xHost := make([]float64, n)
	for iter := 1; iter <= maxIters; iter++ {
		if err := ctxErr(opt.Ctx, iter-1); err != nil {
			x.CopyInto(xHost)
			res.X = xHost
			return res, err
		}
		iterDelta.reset()
		order := cs.BeginIteration(iter)
		for s := range states {
			states[s].order = states[s].order[:0]
			states[s].skip = so.SkipShard != nil && so.SkipShard(iter, s)
		}
		if so.Sequential {
			// Sequential mode keeps the global dispatch order across shard
			// boundaries — with live views this is exactly the goroutine
			// engine's one-worker execution.
			for s := range states {
				st := &states[s]
				st.read = nil
				if !st.skip {
					st.read = shardRead(s, iter)
				}
			}
			for _, bi := range order {
				s := blockShard[bi]
				if states[s].skip {
					continue
				}
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					break
				}
				if opt.SkipBlock != nil && opt.SkipBlock(iter, bi) {
					continue
				}
				runBlock(iter, bi, s, states[s].read, seqScr)
			}
			if so.Provider != nil {
				for s := 0; s < ns; s++ {
					so.Provider.Publish(s, iter)
				}
			}
		} else {
			for _, bi := range order {
				s := blockShard[bi]
				states[s].order = append(states[s].order, bi)
			}
			for s := 0; s < ns; s++ {
				wg.Add(1)
				work[s] <- iter
			}
			wg.Wait() // end-of-global-iteration barrier
		}
		if err := ctxErr(opt.Ctx, iter-1); err != nil {
			x.CopyInto(xHost)
			res.X = xHost
			return res, err
		}
		em.addIteration()

		if opt.AfterIteration != nil {
			opt.AfterIteration(iter, iterateAccess(opt.Precision, atomicAccess{x}))
		}
		delta2 := iterDelta.load()
		if rs.skip(iter, maxIters, delta2) {
			res.GlobalIterations = iter
			continue
		}
		x.CopyInto(xHost)
		stop, err := checkResidual(a, b, xHost, opt, &res, iter, delta2, rs)
		if err != nil {
			res.X = xHost
			return res, err
		}
		if stop {
			break
		}
	}
	x.CopyInto(xHost)
	res.X = xHost
	res.Momentum = rule.prev
	if !opt.RecordHistory && opt.Tolerance == 0 {
		res.Residual = residualInto(is.resid, a, b, xHost)
	}
	return res, nil
}
