package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sched"
	"repro/internal/sparse"
)

// randDominant builds a random symmetric matrix with ring + random
// off-diagonal couplings. mm selects the M-matrix sign pattern (all
// off-diagonals negative); otherwise signs are random (the matrix stays
// SPD by Gershgorin). diagFactor > 1 makes it strictly diagonally
// dominant, hence ρ(|B|) ≤ 1/diagFactor < 1 (Strikwerda's condition
// holds); diagFactor < 1 forces ρ(|B|) ≥ 1.
func randDominant(rng *rand.Rand, n int, mm bool, diagFactor float64) *sparse.CSR {
	type edge struct {
		i, j int
		w    float64
	}
	var edges []edge
	rowSum := make([]float64, n)
	add := func(i, j int, w float64) {
		edges = append(edges, edge{i, j, w})
		rowSum[i] += math.Abs(w)
		rowSum[j] += math.Abs(w)
	}
	for i := 0; i < n-1; i++ {
		add(i, i+1, 0.1+rng.Float64())
	}
	extra := 2 * n
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		add(i, j, 0.1+rng.Float64())
	}
	c := sparse.NewCOO(n, n)
	for _, e := range edges {
		w := -e.w // M-matrix: nonpositive off-diagonals
		if !mm && rng.Intn(2) == 0 {
			w = e.w
		}
		c.Add(e.i, e.j, w)
		c.Add(e.j, e.i, w)
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, rowSum[i]/diagFactor)
	}
	return c.ToCSR()
}

// TestPropertyAsyncConvergesWhenRhoAbsBBelowOne is the paper's central
// theorem as a property test: for random SPD and M-matrices with
// ρ(|B|) < 1, the async-(k) iteration converges under every schedule —
// here 200 randomly seeded schedules, each also replayed from its
// capture to confirm the replay converges identically.
func TestPropertyAsyncConvergesWhenRhoAbsBBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	type class struct {
		name string
		mm   bool
	}
	classes := []class{{"spd", false}, {"mmatrix", true}, {"spd2", false}, {"mmatrix2", true}}
	seedsPer := 50 // 4 matrices × 50 seeds = 200 schedules
	if testing.Short() {
		seedsPer = 5
	}
	for _, cl := range classes {
		t.Run(cl.name, func(t *testing.T) {
			n := 60 + rng.Intn(60)
			a := randDominant(rng, n, cl.mm, 1.0/(1.2+rng.Float64()))
			rep, err := CheckConvergence(a, 30, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.AsyncGuaranteed {
				t.Fatalf("construction broken: ρ(|B|) = %g ≥ 1 for a dominant matrix", rep.RhoAbsB)
			}
			b := onesRHS(a)
			for s := 0; s < seedsPer; s++ {
				seed := rng.Int63()
				rec := sched.NewRecorder(0)
				opt := Options{
					BlockSize: 16, LocalIters: 3, MaxGlobalIters: 500,
					Tolerance: 1e-8, Seed: seed, StaleProb: 0.3, Record: rec,
				}
				res, err := Solve(a, b, opt)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Converged {
					t.Fatalf("seed %d: ρ(|B|)=%.3f < 1 but iteration did not converge (residual %g)",
						seed, rep.RhoAbsB, res.Residual)
				}
				cap := rec.Schedule()
				dumpScheduleOnFailure(t, "theory-prop-"+cl.name, cap)
				rres, err := Solve(a, b, Options{
					BlockSize: 16, LocalIters: 3, MaxGlobalIters: 500,
					Tolerance: 1e-8, Replay: cap,
				})
				if err != nil {
					t.Fatalf("seed %d replay: %v", seed, err)
				}
				if !rres.Converged || !sameVector(res.X, rres.X) {
					t.Fatalf("seed %d: replayed schedule does not reproduce the converged run", seed)
				}
			}
		})
	}
}

// TestPropertyDivergenceReportedWhenRhoAbsBAtLeastOne: with a weak
// diagonal ρ(|B|) ≥ 1, the pre-flight report withdraws the guarantee and
// the iteration in fact blows up.
func TestPropertyDivergenceReportedWhenRhoAbsBAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDominant(rng, 80, true, 2.0) // diag = half the off-diagonal mass
	rep, err := CheckConvergence(a, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AsyncGuaranteed {
		t.Fatalf("ρ(|B|) = %g reported < 1 for a weakly dominant matrix", rep.RhoAbsB)
	}
	b := onesRHS(a)
	res, err := Solve(a, b, Options{
		BlockSize: 16, LocalIters: 3, MaxGlobalIters: 3000,
		Tolerance: 1e-8, Seed: 9, RecordHistory: true,
	})
	if err == nil {
		if res.Converged {
			t.Fatal("iteration converged despite ρ(|B|) ≥ 1 and ρ(B) ≥ 1")
		}
		// Not yet non-finite: the history must still show growth.
		if len(res.History) < 2 || res.History[len(res.History)-1] < 1e6*res.History[0] {
			t.Fatalf("no divergence visible: first %g, last %g",
				res.History[0], res.History[len(res.History)-1])
		}
	} else if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}
