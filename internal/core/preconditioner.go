package core

import (
	"fmt"

	"repro/internal/sparse"
)

// AsyncPreconditioner realizes the paper's §5 outlook of using
// component-wise relaxation as a *preconditioner*: each application runs a
// fixed number of block-asynchronous global iterations on Az = r from a
// zero start. The chaotic schedule is re-seeded identically for every
// application, so the preconditioner is a fixed linear operator — the
// property restarted GMRES needs from a stationary M⁻¹.
//
// It implements solver.Preconditioner.
type AsyncPreconditioner struct {
	a   *sparse.CSR
	opt Options
}

// NewAsyncPreconditioner builds the preconditioner. sweeps is the number
// of global iterations per application (1–3 are typical preconditioner
// strengths); k is the local iteration count of async-(k).
func NewAsyncPreconditioner(a *sparse.CSR, blockSize, k, sweeps int, seed int64) (*AsyncPreconditioner, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("core: preconditioner requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	opt := Options{
		BlockSize:      blockSize,
		LocalIters:     k,
		MaxGlobalIters: sweeps,
		Seed:           seed,
		Engine:         EngineSimulated, // deterministic: fixed operator
	}
	// Validate eagerly with a dummy rhs so Apply can't fail on options.
	if err := opt.withDefaults().validate(a, make([]float64, a.Rows)); err != nil {
		return nil, err
	}
	return &AsyncPreconditioner{a: a, opt: opt}, nil
}

// Apply computes z ≈ A⁻¹ r via the configured asynchronous sweeps.
func (p *AsyncPreconditioner) Apply(z, r []float64) error {
	if len(z) != p.a.Rows || len(r) != p.a.Rows {
		return fmt.Errorf("core: preconditioner dimension mismatch (%d, %d vs %d)", len(z), len(r), p.a.Rows)
	}
	res, err := Solve(p.a, r, p.opt)
	if err != nil {
		return err
	}
	copy(z, res.X)
	return nil
}
