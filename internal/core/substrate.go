package core

import (
	"fmt"
	"math/rand"

	"repro/internal/gpusim"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// This file is the shared execution substrate of the engines. Every engine
// in the package is the same algorithm — sweep all blocks once per global
// iteration, each block reading off-block components through some staleness
// structure — so the parts that distinguish an engine are exactly two:
// which block runs next (the scheduling half) and against which view of the
// iterate (the read-semantics half). The substrate names the two halves
// (BlockScheduler, IterateView), provides the schedulers the stock engines
// are thin wrappers over, and centralizes the option validation and
// schedule-metadata plumbing the engines used to copy.

// IterateView is how a block execution observes components of the iterate:
// the read-semantics half of the execution substrate. The simulated engine
// reads through snapshots and per-component race mixers, the concurrent
// engines through the shared atomic vector, the multi-device executor
// through per-device exchange copies, and the cluster executor through a
// bounded-delay ring — all behind this one interface, which is also what
// the block kernels consume for their off-block (and local starting-value)
// reads.
type IterateView interface {
	// Load returns component i of the iterate as this view observes it.
	Load(i int) float64
}

// BlockScheduler is the scheduling half of the execution substrate: per
// global iteration it decides the block execution order, and per block the
// IterateView its off-block reads go through. The stock engines are thin
// loops over one scheduler each — the simulated engine over the seeded
// wave scheduler (snapshots + race coins), the goroutine and sharded
// engines over the chaotic scheduler (live atomic reads) — and the chaos
// hooks, record/replay taps and metrics counters plug into the substrate
// rather than into each engine separately.
type BlockScheduler interface {
	// BeginIteration starts global iteration iter (1-based) and returns
	// the block dispatch order. The returned slice is valid until the next
	// call.
	BeginIteration(iter int) []int
	// View returns the IterateView for one block's off-block reads; nil
	// selects live reads from the shared iterate.
	View(iter, block int) IterateView
}

// chaoticScheduler is the BlockScheduler of the concurrent engines: a
// seeded chaotic dispatch order (gpusim.Scheduler), the chaos Reorder hook
// applied to it, and live views (nil) — staleness is physical, produced by
// the races of the executing workers.
type chaoticScheduler struct {
	g     *gpusim.Scheduler
	chaos *ChaosHooks
	em    *engineCounters
	nb    int
	order []int
}

// newChaoticScheduler builds the scheduler; order is the reusable dispatch
// buffer (typically the plan's iterScratch.order).
func newChaoticScheduler(opt Options, em *engineCounters, nb int, order []int) *chaoticScheduler {
	return &chaoticScheduler{
		g:     gpusim.NewScheduler(opt.Seed, opt.Recurrence),
		chaos: opt.Chaos,
		em:    em,
		nb:    nb,
		order: order,
	}
}

func (s *chaoticScheduler) BeginIteration(iter int) []int {
	s.order = s.g.OrderInto(s.order, s.nb)
	s.chaos.reorder(s.em, iter, s.order)
	return s.order
}

func (s *chaoticScheduler) View(iter, block int) IterateView { return nil }

// waveScheduler is the BlockScheduler of the simulated engine: the same
// seeded chaotic order, plus the modeled memory visibility of a GPU kernel
// sweep — an iteration-start snapshot, a per-block stale mask, and a
// per-component race mixer (see solveSimulated for the calibration story).
// The chaos StaleRead hook folds into the mask; the pseudo-random draw
// sequence (order, then mask, then per-read coins) is part of the engine's
// reproducibility contract and must not be reordered.
type waveScheduler struct {
	g         *gpusim.Scheduler
	chaos     *ChaosHooks
	em        *engineCounters
	nb        int
	staleProb float64
	x, snap   []float64
	order     []int
	stale     []bool
	mix       *mixReader
	snapRead  IterateView
}

func newWaveScheduler(opt Options, em *engineCounters, nb int, x []float64, is *iterScratch) *waveScheduler {
	return &waveScheduler{
		g:         gpusim.NewScheduler(opt.Seed, opt.Recurrence),
		chaos:     opt.Chaos,
		em:        em,
		nb:        nb,
		staleProb: opt.StaleProb,
		x:         x,
		snap:      is.snap,
		order:     is.order,
		stale:     is.stale,
		mix:       &mixReader{rng: rand.New(rand.NewSource(raceSeed(opt.Seed)))},
		snapRead:  sliceReader(is.snap),
	}
}

func (s *waveScheduler) BeginIteration(iter int) []int {
	vecmath.Copy(s.snap, s.x)
	s.order = s.g.OrderInto(s.order, s.nb)
	s.stale = s.g.StaleMaskInto(s.stale, s.nb, s.staleProb)
	s.chaos.reorder(s.em, iter, s.order)
	return s.order
}

func (s *waveScheduler) View(iter, block int) IterateView {
	if s.chaos.staleRead(s.em, iter, block) {
		s.stale[block] = true
	}
	if s.stale[block] {
		s.em.addStaleRead()
		return s.snapRead
	}
	s.mix.live, s.mix.snap = s.x, s.snap
	return s.mix
}

// validateSystem checks the system shape every engine entry point requires:
// a square matrix and a matching right-hand side.
func validateSystem(a *sparse.CSR, b []float64) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("core: matrix must be square, have %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return fmt.Errorf("core: rhs length %d does not match dimension %d", len(b), a.Rows)
	}
	return nil
}

// validateGuess checks an optional initial guess against the dimension.
func validateGuess(n int, guess []float64) error {
	if guess != nil && len(guess) != n {
		return fmt.Errorf("core: initial guess length %d does not match dimension %d", len(guess), n)
	}
	return nil
}

// barrierMeta describes a barrier-engine capture (simulated, goroutine,
// sharded): the one metadata shape all engines with global iterations
// share, so replays can re-derive seeds and sweep counts uniformly.
func barrierMeta(engine string, nb, workers int, opt Options) sched.Meta {
	return sched.Meta{
		Engine:     engine,
		NumBlocks:  nb,
		Workers:    workers,
		Seed:       opt.Seed,
		Omega:      opt.Omega,
		LocalIters: opt.LocalIters,
		Recurrence: opt.Recurrence,
		StaleProb:  opt.StaleProb,
		Method:     opt.Method.String(),
		Beta:       opt.Beta,
	}
}
