package core

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/mats"
)

func TestTuneFindsContractingConfig(t *testing.T) {
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	res, err := Tune(a, b, TuneConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockSize <= 0 || res.LocalIters <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if !(res.Rate > 0 && res.Rate < 1) {
		t.Errorf("winning rate %g not contracting", res.Rate)
	}
	if res.Probed == 0 {
		t.Error("no configurations probed")
	}
	// The tuned configuration must beat the worst corner of the default
	// grid in modeled seconds-per-digit.
	m := gpusim.CalibratedModel()
	worst, err := Solve(a, b, Options{
		BlockSize: 64, LocalIters: 1, MaxGlobalIters: 25, RecordHistory: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := worst.History
	rate := h[len(h)-1] / h[0]
	_ = rate
	_ = m
	if res.SecondsPerDigit <= 0 {
		t.Errorf("SecondsPerDigit = %g", res.SecondsPerDigit)
	}
}

func TestTunePrefersLocalSweepsOnLocalProblem(t *testing.T) {
	// On fv-type systems local sweeps pay; the tuner must not pick k = 1.
	a := mats.FV(30, 30, 1.368)
	b := onesRHS(a)
	res, err := Tune(a, b, TuneConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalIters < 2 {
		t.Errorf("tuner picked k=%d on a block-local problem; local sweeps are nearly free", res.LocalIters)
	}
}

func TestTuneChem97AvoidsWastedSweeps(t *testing.T) {
	// Chem97's local blocks are diagonal at full size (every coupling sits
	// ≥ n/3 = 847 away, beyond any candidate block): extra sweeps buy
	// nothing but cost ~4% each, so the tuner must pick k = 1. (At smaller
	// n large blocks *do* capture the couplings and more sweeps win —
	// exactly the problem-dependence the paper's §5 points out.)
	a := mats.Chem97ZtZ(2541)
	b := onesRHS(a)
	res, err := Tune(a, b, TuneConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalIters > 1 {
		t.Errorf("tuner picked k=%d on diagonal local blocks; sweeps are wasted there", res.LocalIters)
	}
}

func TestTuneFailsOnDivergentSystem(t *testing.T) {
	a := mats.S1RMT3M1(200)
	b := onesRHS(a)
	if _, err := Tune(a, b, TuneConfig{Seed: 1, ProbeIters: 10}); err == nil {
		t.Error("expected error: no configuration can contract on ρ(B)>1")
	}
}
