package core

import (
	"repro/internal/sparse"
)

// runBlockKernelSELL runs the k local sweeps over the block's SELL-C
// layout (see sellBlock): gather and publish are exactly runBlockKernel's,
// and each sweep walks the block's fixed-height row slices slot-major, so
// the inner loop is a fixed-trip pass over sellC contiguous lanes — the
// layout ELL/SELL kernels use to vectorize on GPUs and SIMD CPUs. Padding
// lanes carry column −1 and are skipped by the branch, never multiplied,
// so the per-row floating-point sequence is the CSR kernels' ascending-
// column order and the iterates stay bit-identical.
func runBlockKernelSELL(a *sparse.CSR, sp *sparse.Splitting, b []float64, v *blockView,
	k int, rule *updateRule, offRead, locRead valueReader, write valueWriter, scr *kernelScratch) float64 {

	omega := rule.omega
	momentum := rule.beta != 0 && rule.prev != nil
	sb := v.sell
	bs := v.hi - v.lo
	s := scr.s[:bs]
	xloc := scr.xloc[:bs]
	xnew := scr.xnew[:bs]
	x0 := scr.x0[:bs]
	invd := sp.InvDiag[v.lo:v.hi]
	var xprev, prev []float64
	if momentum {
		xprev = scr.xprev[:bs]
		prev = rule.prev[v.lo:v.hi]
		copy(xprev, prev)
	}

	// Fused gather, identical to runBlockKernel.
	for r := 0; r < bs; r++ {
		acc := b[v.lo+r]
		for e := v.offPtr[r]; e < v.offPtr[r+1]; e++ {
			acc -= v.offVal[e] * offRead.Load(int(v.offCols[e]))
		}
		s[r] = acc
		xv := locRead.Load(v.lo + r)
		xloc[r] = xv
		x0[r] = xv
	}

	ns := len(sb.sliceOff) - 1
	for sweep := 0; sweep < k; sweep++ {
		for sl := 0; sl < ns; sl++ {
			base := int(sb.sliceOff[sl])
			width := (int(sb.sliceOff[sl+1]) - base) / sellC
			r0 := sl * sellC
			lanes := bs - r0
			if lanes > sellC {
				lanes = sellC
			}
			var acc [sellC]float64
			for l := 0; l < lanes; l++ {
				acc[l] = s[r0+l]
			}
			if lanes == sellC {
				// Full slice: constant lane indices keep the eight
				// accumulators in registers (eight independent FP chains)
				// and prove every slot access in bounds.
				for slot := 0; slot < width; slot++ {
					cols := (*[sellC]int32)(sb.cols[base+slot*sellC:])
					vals := (*[sellC]float64)(sb.vals[base+slot*sellC:])
					if c := cols[0]; c >= 0 {
						acc[0] -= vals[0] * xloc[c]
					}
					if c := cols[1]; c >= 0 {
						acc[1] -= vals[1] * xloc[c]
					}
					if c := cols[2]; c >= 0 {
						acc[2] -= vals[2] * xloc[c]
					}
					if c := cols[3]; c >= 0 {
						acc[3] -= vals[3] * xloc[c]
					}
					if c := cols[4]; c >= 0 {
						acc[4] -= vals[4] * xloc[c]
					}
					if c := cols[5]; c >= 0 {
						acc[5] -= vals[5] * xloc[c]
					}
					if c := cols[6]; c >= 0 {
						acc[6] -= vals[6] * xloc[c]
					}
					if c := cols[7]; c >= 0 {
						acc[7] -= vals[7] * xloc[c]
					}
				}
			} else {
				for slot := 0; slot < width; slot++ {
					o := base + slot*sellC
					cols := sb.cols[o : o+sellC]
					vals := sb.vals[o : o+sellC]
					for l := 0; l < lanes; l++ {
						if c := cols[l]; c >= 0 {
							acc[l] -= vals[l] * xloc[c]
						}
					}
				}
			}
			for l := 0; l < lanes; l++ {
				r := r0 + l
				xnew[r] = (1-omega)*xloc[r] + omega*acc[l]*invd[r]
			}
		}
		if momentum {
			// β post-pass and three-way rotation (see kernel_stencil.go for
			// the floating-point-identity argument).
			for r := 0; r < bs; r++ {
				xnew[r] += rule.beta * (xloc[r] - xprev[r])
			}
			xprev, xloc, xnew = xloc, xnew, xprev
		} else {
			xloc, xnew = xnew, xloc
		}
	}
	if momentum {
		storeMomentum(prev, xprev, rule.f32)
	}

	// Publish, identical to runBlockKernel.
	var d2 float64
	for r := 0; r < bs; r++ {
		nv := xloc[r]
		write.Store(v.lo+r, nv)
		d := nv - x0[r]
		d2 += d * d
	}
	return d2
}
