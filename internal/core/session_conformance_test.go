package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/mats"
	"repro/internal/sched"
)

// stepRHS builds the k-th right-hand side of a synthetic time-stepping
// sequence: the base RHS plus a small seeded per-step drift, the regime a
// streaming session exists for.
func stepRHS(base []float64, k int, eps float64) []float64 {
	rng := rand.New(rand.NewSource(int64(1000 + k)))
	b := make([]float64, len(base))
	for i := range b {
		b[i] = base[i] * (1 + eps*float64(k)*(2*rng.Float64()-1))
	}
	return b
}

// TestSessionMatchesChainedColdSolves is the metamorphic conformance
// anchor: a k-step session must equal k solves chained by hand — each
// seeded with the previous result via Options.InitialGuess — bit for bit,
// step by step, on the deterministic simulated engine with per-step seeds.
func TestSessionMatchesChainedColdSolves(t *testing.T) {
	a := mats.Trefethen(300)
	base := onesRHS(a)
	p, err := NewPlan(a, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		BlockSize:      32,
		LocalIters:     3,
		MaxGlobalIters: 400,
		Tolerance:      1e-10,
		Engine:         EngineSimulated,
	}

	const steps = 6
	sess := NewSession(p)
	var chained []float64 // the hand-managed warm iterate
	for k := 0; k < steps; k++ {
		b := stepRHS(base, k, 1e-3)
		so := opt
		so.Seed = int64(100 + k) // same schedule stream down both paths

		got, err := sess.Step(b, so)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}

		ho := so
		ho.InitialGuess = chained
		want, err := SolveWithPlan(p, b, ho)
		if err != nil {
			t.Fatalf("hand-chained solve %d: %v", k, err)
		}
		chained = want.X

		if got.GlobalIterations != want.GlobalIterations {
			t.Fatalf("step %d: session took %d iterations, hand chain %d",
				k, got.GlobalIterations, want.GlobalIterations)
		}
		if got.Residual != want.Residual {
			t.Fatalf("step %d: session residual %v, hand chain %v", k, got.Residual, want.Residual)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("step %d: X[%d] = %v, want bit-identical %v", k, i, got.X[i], want.X[i])
			}
		}
	}
	if sess.Steps() != steps {
		t.Fatalf("session counted %d steps, want %d", sess.Steps(), steps)
	}
}

// TestSessionReplayConformance runs the metamorphic test through the
// concurrent engine: each live session step's schedule is captured with
// internal/sched, then both a fresh session and a hand-managed chain of
// cold solves replay the same schedules — the replays are canonical
// deterministic executions of the recorded block sequences, so the two
// paths must agree bit for bit.
func TestSessionReplayConformance(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	base := onesRHS(a)
	p, err := NewPlan(a, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		BlockSize:      32,
		LocalIters:     2,
		MaxGlobalIters: 2000,
		Tolerance:      1e-9,
		Engine:         EngineGoroutine,
		Workers:        4,
	}

	const steps = 4
	// Live pass: a real concurrent session, one recorded schedule per step.
	schedules := make([]*sched.Schedule, steps)
	live := NewSession(p)
	for k := 0; k < steps; k++ {
		rec := sched.NewRecorder(0)
		so := opt
		so.Record = rec
		if _, err := live.Step(stepRHS(base, k, 1e-3), so); err != nil {
			t.Fatalf("live step %d: %v", k, err)
		}
		schedules[k] = rec.Schedule()
	}

	// Replay pass A: a fresh session driven along the captured schedules.
	// Replay pass B: hand-chained SolveWithPlan along the same schedules.
	replay := NewSession(p)
	var chained []float64
	for k := 0; k < steps; k++ {
		b := stepRHS(base, k, 1e-3)
		so := opt
		so.Replay = schedules[k]

		got, err := replay.Step(b, so)
		if err != nil {
			t.Fatalf("replayed step %d: %v", k, err)
		}
		ho := so
		ho.InitialGuess = chained
		want, err := SolveWithPlan(p, b, ho)
		if err != nil {
			t.Fatalf("replayed hand chain %d: %v", k, err)
		}
		chained = want.X

		if got.GlobalIterations != want.GlobalIterations {
			t.Fatalf("step %d: session replay took %d iterations, hand chain %d",
				k, got.GlobalIterations, want.GlobalIterations)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("step %d: X[%d] = %v, want bit-identical %v", k, i, got.X[i], want.X[i])
			}
		}
	}
}

// TestSessionWarmSurvivesFailedStep pins the error contract: a step that
// fails (here: an already-canceled context) must leave the previous warm
// iterate and the step count untouched, so a retry starts from the same
// state as the failed attempt did.
func TestSessionWarmSurvivesFailedStep(t *testing.T) {
	a := mats.Trefethen(150)
	b := onesRHS(a)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		BlockSize:      25,
		LocalIters:     2,
		MaxGlobalIters: 300,
		Tolerance:      1e-8,
		Seed:           5,
	}
	sess := NewSession(p)
	if _, err := sess.Step(b, opt); err != nil {
		t.Fatal(err)
	}
	warm := append([]float64(nil), sess.Warm()...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bad := opt
	bad.Ctx = ctx
	if _, err := sess.Step(b, bad); err == nil {
		t.Fatal("canceled step reported success")
	}
	if sess.Steps() != 1 {
		t.Fatalf("failed step advanced the step count to %d", sess.Steps())
	}
	for i, v := range sess.Warm() {
		if v != warm[i] {
			t.Fatalf("failed step modified warm[%d]: %v != %v", i, v, warm[i])
		}
	}

	// A successful retry proceeds from exactly that warm iterate.
	retry, err := sess.Step(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	ho := opt
	ho.InitialGuess = warm
	want, err := SolveWithPlan(p, b, ho)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.X {
		if retry.X[i] != want.X[i] {
			t.Fatalf("retry X[%d] = %v, want %v", i, retry.X[i], want.X[i])
		}
	}
}

// TestSessionRejectsCallerGuess: a caller-supplied InitialGuess would
// silently defeat the warm-start contract, so Step refuses it.
func TestSessionRejectsCallerGuess(t *testing.T) {
	a := mats.Trefethen(100)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(p)
	opt := Options{
		BlockSize:      25,
		LocalIters:     2,
		MaxGlobalIters: 50,
		InitialGuess:   make([]float64, a.Rows),
	}
	if _, err := sess.Step(onesRHS(a), opt); err == nil {
		t.Fatal("Step accepted a caller-supplied InitialGuess")
	}
}

// TestSessionReset: after Reset the next step is cold — identical to a
// fresh session's first step under the same seed.
func TestSessionReset(t *testing.T) {
	a := mats.Trefethen(150)
	b := onesRHS(a)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		BlockSize:      25,
		LocalIters:     2,
		MaxGlobalIters: 300,
		Tolerance:      1e-8,
		Seed:           11,
	}
	sess := NewSession(p)
	first, err := sess.Step(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(b, opt); err != nil {
		t.Fatal(err)
	}
	sess.Reset()
	if sess.Warm() != nil || sess.Steps() != 0 {
		t.Fatalf("Reset left state behind: warm=%v steps=%d", sess.Warm(), sess.Steps())
	}
	again, err := sess.Step(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.GlobalIterations != first.GlobalIterations {
		t.Fatalf("post-Reset step took %d iterations, first cold step %d",
			again.GlobalIterations, first.GlobalIterations)
	}
	for i := range first.X {
		if again.X[i] != first.X[i] {
			t.Fatalf("post-Reset X[%d] = %v, want %v", i, again.X[i], first.X[i])
		}
	}
}
