// Package core implements the paper's primary contribution: the
// block-asynchronous relaxation method async-(k) for GPUs (Algorithm 1,
// Eq. 4).
//
// The linear system is decomposed into contiguous blocks of rows
// ("subdomains"); each block corresponds to one GPU thread block. Blocks
// iterate asynchronously with respect to each other — they read whatever
// values of the off-block components happen to be in global memory — while
// inside a block k synchronous Jacobi-like sweeps are performed with the
// off-block contribution frozen. One *global iteration* sweeps every block
// exactly once (in chaotic order), so every component is updated k times
// per global iteration.
//
// Three execution engines are provided:
//
//   - EngineSimulated: a deterministic, seeded reproduction of the GPU's
//     chaotic block scheduling (gpusim.Scheduler). Blocks execute
//     sequentially in scheduler order against the live iterate, giving the
//     "block Gauss-Seidel flavor" the paper notes; a configurable fraction
//     of blocks instead reads the snapshot from the start of the global
//     iteration, modeling overlapping execution. Fully reproducible; can
//     record a Chazan–Miranker update/shift trace.
//
//   - EngineGoroutine: real asynchrony. Blocks are dispatched to a pool of
//     workers (default 14, the Fermi C2070's multiprocessor count) and
//     read/write the shared iterate through per-component atomics with no
//     further synchronization. Interleavings — and therefore results —
//     genuinely vary between runs, like the paper's 1000-run study (§4.1).
//
//   - EngineFreeRunning: an extension with no global barrier at all; see
//     SolveFreeRunning.
//
// All engines run their inner sweeps through a fused block-row kernel
// staged once in NewPlan — the host-side analogue of the paper's
// shared-memory blocking — and Plan carries reusable per-solve scratch so
// a warm solve allocates nothing in steady state (enforced by
// alloc_test.go). The kernel itself is dispatched per matrix structure
// (kernel_dispatch.go, docs/KERNELS.md): packed per-block CSR views by
// default, a matrix-free constant-coefficient stencil kernel for matrices
// that declare or detect stencil structure (interior rows load no column
// indices; boundary rows fall back to packed CSR), or a sliced-ELL
// (SELL-8) layout for general matrices. Every kernel preserves the
// reference floating-point operation order and IterateView.Load order, so
// float64 iterates are bit-identical across kernels and the dispatch is
// purely a performance decision. The update rule is a third, orthogonal
// axis (update_rule.go, docs/METHODS.md): Options.Method selects the
// paper's first-order Jacobi sweep or the second-order momentum
// Richardson recurrence x⁺ = x + ωD⁻¹r + β(x − x⁻) (Options.Beta),
// threaded through every engine and kernel; a β = 0 rule of either kind
// takes the literal first-order code path, so richardson2 with β = 0 is
// bit-identical to jacobi by construction. Options.Precision selects float32
// iterate storage with float64 accumulation and float64 residual checks
// (precision.go). DESIGN.md §2 records the layout rationale.
package core
