// Package core implements the paper's primary contribution: the
// block-asynchronous relaxation method async-(k) for GPUs (Algorithm 1,
// Eq. 4).
//
// The linear system is decomposed into contiguous blocks of rows
// ("subdomains"); each block corresponds to one GPU thread block. Blocks
// iterate asynchronously with respect to each other — they read whatever
// values of the off-block components happen to be in global memory — while
// inside a block k synchronous Jacobi-like sweeps are performed with the
// off-block contribution frozen. One *global iteration* sweeps every block
// exactly once (in chaotic order), so every component is updated k times
// per global iteration.
//
// Three execution engines are provided:
//
//   - EngineSimulated: a deterministic, seeded reproduction of the GPU's
//     chaotic block scheduling (gpusim.Scheduler). Blocks execute
//     sequentially in scheduler order against the live iterate, giving the
//     "block Gauss-Seidel flavor" the paper notes; a configurable fraction
//     of blocks instead reads the snapshot from the start of the global
//     iteration, modeling overlapping execution. Fully reproducible; can
//     record a Chazan–Miranker update/shift trace.
//
//   - EngineGoroutine: real asynchrony. Blocks are dispatched to a pool of
//     workers (default 14, the Fermi C2070's multiprocessor count) and
//     read/write the shared iterate through per-component atomics with no
//     further synchronization. Interleavings — and therefore results —
//     genuinely vary between runs, like the paper's 1000-run study (§4.1).
//
//   - EngineFreeRunning: an extension with no global barrier at all; see
//     SolveFreeRunning.
//
// All engines run their inner sweeps through a single fused block-row
// kernel (kernel.go) that reads packed per-block CSR views staged once in
// NewPlan — the host-side analogue of the paper's shared-memory blocking —
// and Plan carries reusable per-solve scratch so a warm solve allocates
// nothing in steady state (enforced by alloc_test.go). DESIGN.md §2
// records the layout rationale.
package core
