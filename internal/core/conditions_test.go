package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mats"
)

func TestCheckConvergenceDominant(t *testing.T) {
	r, err := CheckConvergence(mats.FV(20, 20, 1.368), 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.StrictlyDiagonallyDominant || !r.JacobiConverges || !r.AsyncGuaranteed {
		t.Errorf("fv analog should satisfy everything: %+v", r)
	}
	if r.SuggestedTau != 0 {
		t.Errorf("no τ needed when ρ(B) < 1, got %g", r.SuggestedTau)
	}
	if !strings.Contains(r.String(), "guaranteed") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestCheckConvergenceDivergent(t *testing.T) {
	r, err := CheckConvergence(mats.S1RMT3M1(300), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.JacobiConverges || r.AsyncGuaranteed {
		t.Errorf("s1rmt3m1 must fail both conditions: %+v", r)
	}
	if math.Abs(r.RhoB-2.657) > 0.05 {
		t.Errorf("ρ(B) = %g, want ≈2.657", r.RhoB)
	}
	if !(r.SuggestedTau > 0 && r.SuggestedTau < 1) {
		t.Errorf("expected a τ suggestion, got %g", r.SuggestedTau)
	}
	if !strings.Contains(r.String(), "tau=") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestCheckConvergenceTrefethen(t *testing.T) {
	// Trefethen is NOT strictly diagonally dominant (early rows) yet both
	// spectral conditions hold — the case where the spectral test is
	// strictly more informative than the dominance test.
	r, err := CheckConvergence(mats.Trefethen(500), 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.StrictlyDiagonallyDominant {
		t.Error("Trefethen's first rows are not dominant")
	}
	if !r.JacobiConverges || !r.AsyncGuaranteed {
		t.Errorf("Trefethen should satisfy both spectral conditions: %+v", r)
	}
}

func TestCheckConvergenceValidation(t *testing.T) {
	c := mats.Poisson2D(3, 3)
	_ = c
	rect := &matCSR{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	if _, err := CheckConvergence(rect, 10, 1); err == nil {
		t.Error("expected error for rectangular input")
	}
}
