package core

import (
	"testing"

	"repro/internal/mats"
	"repro/internal/solver"
)

func TestAsyncPreconditionerSpeedsUpGMRES(t *testing.T) {
	// Paper §5: relaxation as a preconditioner. A few async-(2) sweeps as
	// M⁻¹ must cut GMRES iteration counts on a diagonally dominant system.
	a := mats.FV(40, 40, 1.368)
	b := onesRHS(a)
	opt := solver.Options{MaxIterations: 400, Tolerance: 1e-9}

	plain, err := solver.GMRES(a, b, 30, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	prec, err := NewAsyncPreconditioner(a, 128, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := solver.GMRES(a, b, 30, prec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatalf("preconditioned GMRES failed: residual %g", pre.Residual)
	}
	if plain.Converged && pre.Iterations >= plain.Iterations {
		t.Errorf("async preconditioning should reduce iterations: %d vs plain %d",
			pre.Iterations, plain.Iterations)
	}
}

func TestAsyncPreconditionerDeterministic(t *testing.T) {
	// Fixed seed ⇒ fixed linear operator: two applications to the same
	// vector must agree bit for bit.
	a := mats.Poisson2D(12, 12)
	p, err := NewAsyncPreconditioner(a, 32, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := onesRHS(a)
	z1 := make([]float64, a.Rows)
	z2 := make([]float64, a.Rows)
	if err := p.Apply(z1, r); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(z2, r); err != nil {
		t.Fatal(err)
	}
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatalf("preconditioner not deterministic at %d: %g vs %g", i, z1[i], z2[i])
		}
	}
}

func TestAsyncPreconditionerValidation(t *testing.T) {
	a := mats.Poisson2D(4, 4)
	if _, err := NewAsyncPreconditioner(a, 0, 1, 1, 1); err == nil {
		t.Error("expected block-size validation error")
	}
	p, err := NewAsyncPreconditioner(a, 4, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(make([]float64, 3), make([]float64, 16)); err == nil {
		t.Error("expected dimension error")
	}
}
