package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/certify"
	"repro/internal/sparse"
)

// Plan is the precomputed per-matrix state of a block-asynchronous solve:
// the block partition, the per-block CSR views, the Jacobi splitting
// (inverse diagonal), and — when the plan is built for exact local solves —
// one dense LU factorization per subdomain.
//
// Building these artifacts is the expensive "setup" half of a solve; the
// iteration itself reuses them unchanged. A Plan is immutable after NewPlan
// and safe for concurrent use by any number of SolveWithPlan calls, so a
// long-running process (see internal/service) can pay the setup cost once
// per matrix/configuration and amortize it across requests — the paper's
// observation that local work "almost comes for free" once the subdomain
// state is resident, applied to the host side.
type Plan struct {
	a          *sparse.CSR
	sp         *sparse.Splitting
	part       sparse.BlockPartition
	views      []blockView
	factors    *blockFactors // non-nil iff exactLocal
	blockSize  int
	exactLocal bool
	maxBlock   int  // rows of the largest block (kernel scratch sizing)
	staged     bool // packed kernel staging built (see buildBlockViews)

	// kernel is the resolved sweep-kernel dispatch (see kernel_dispatch.go);
	// stencil carries the matrix-free kernel's data when kernel is
	// KernelStencil, and the SELL layout hangs off each blockView.
	kernel  KernelKind
	stencil *stencilData

	// Scratch pools: solves borrow their kernel and per-iteration buffers
	// here instead of allocating, so a warm plan runs its steady-state
	// global iterations with zero heap allocations (test-enforced in
	// alloc_test.go). The pools are keyed to this plan's dimensions.
	kernelPool sync.Pool // *kernelScratch, sized maxBlock
	iterPool   sync.Pool // *iterScratch, sized (rows, numBlocks)
}

// iterScratch is the per-solve working set of the barrier engines: the
// schedule order and stale-mask buffers, the iteration-start snapshot, the
// residual scratch vector and the goroutine engine's host-side copy.
type iterScratch struct {
	order []int
	stale []bool
	snap  []float64
	resid []float64
	xhost []float64
}

func (p *Plan) getKernelScratch() *kernelScratch {
	return p.kernelPool.Get().(*kernelScratch)
}

func (p *Plan) putKernelScratch(s *kernelScratch) { p.kernelPool.Put(s) }

func (p *Plan) getIterScratch() *iterScratch {
	return p.iterPool.Get().(*iterScratch)
}

func (p *Plan) putIterScratch(s *iterScratch) { p.iterPool.Put(s) }

// kernelFor selects the block kernel implementation: the plan's resolved
// dispatch (matrix-free stencil, SELL-C, or the fused packed-CSR hot path)
// when the plan carries packed views, the reference two-step path otherwise
// (or when a test pins it via Options.referenceKernel). All of them produce
// bit-identical iterates, so every engine, replay and shard path runs any
// dispatch unchanged.
func (p *Plan) kernelFor(reference bool) kernelFunc {
	if !p.staged || reference {
		return runBlockKernelReference
	}
	switch p.kernel {
	case KernelStencil:
		return p.runBlockKernelStencil
	case KernelSELL:
		return runBlockKernelSELL
	}
	return runBlockKernel
}

// NewPlan precomputes the per-matrix artifacts for the given block size.
// When exactLocal is set the subdomain LU factors for Options.ExactLocal
// are also built (the dominant setup cost, O(numBlocks·blockSize³)).
// The sweep kernel is auto-dispatched: constant-coefficient stencil
// structure, when detected, takes the matrix-free fast path; use
// NewPlanWithConfig to pin a kernel or declare the stencil.
func NewPlan(a *sparse.CSR, blockSize int, exactLocal bool) (*Plan, error) {
	return NewPlanWithConfig(a, blockSize, exactLocal, PlanConfig{})
}

// NewPlanWithConfig is NewPlan with an explicit kernel selection (see
// PlanConfig). Plans differing only in kernel produce bit-identical
// iterates; the config is purely a performance choice.
func NewPlanWithConfig(a *sparse.CSR, blockSize int, exactLocal bool, cfg PlanConfig) (*Plan, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("core: matrix must be square, have %dx%d", a.Rows, a.Cols)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("core: BlockSize must be positive, have %d", blockSize)
	}
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		return nil, err
	}
	part := sparse.NewBlockPartition(a.Rows, blockSize)
	views, staged := buildBlockViews(a, part)
	p := &Plan{
		a:          a,
		sp:         sp,
		part:       part,
		views:      views,
		blockSize:  blockSize,
		exactLocal: exactLocal,
		staged:     staged,
	}
	for bi := 0; bi < part.NumBlocks(); bi++ {
		if s := part.Size(bi); s > p.maxBlock {
			p.maxBlock = s
		}
	}
	if exactLocal {
		if p.factors, err = buildBlockFactors(a, part, views); err != nil {
			return nil, err
		}
	}
	if err := p.resolveKernel(cfg); err != nil {
		return nil, err
	}
	maxBlock, rows, nb := p.maxBlock, a.Rows, part.NumBlocks()
	p.kernelPool.New = func() any { return newKernelScratch(maxBlock) }
	p.iterPool.New = func() any {
		return &iterScratch{
			order: make([]int, nb),
			stale: make([]bool, nb),
			snap:  make([]float64, rows),
			resid: make([]float64, rows),
			xhost: make([]float64, rows),
		}
	}
	return p, nil
}

// Matrix returns the matrix the plan was built for (not a copy; the caller
// must not mutate it while the plan is alive).
func (p *Plan) Matrix() *sparse.CSR { return p.a }

// BlockSize returns the subdomain size the plan was built with.
func (p *Plan) BlockSize() int { return p.blockSize }

// ExactLocal reports whether the plan carries subdomain LU factors.
func (p *Plan) ExactLocal() bool { return p.exactLocal }

// NumBlocks returns the number of subdomains.
func (p *Plan) NumBlocks() int { return p.part.NumBlocks() }

// Partition returns the plan's block partition.
func (p *Plan) Partition() sparse.BlockPartition { return p.part }

// MemoryBytes estimates the resident size of the plan, including the
// matrix it retains, the splitting, the block views and any LU factors.
// Cache implementations use it for size accounting.
func (p *Plan) MemoryBytes() int64 {
	const w = 8 // bytes per int/float64 on the targeted 64-bit platforms
	n := int64(p.a.Rows)
	sz := w * int64(len(p.a.RowPtr)+len(p.a.ColIdx)+len(p.a.Val)) // CSR
	sz += 2 * w * n                                               // Splitting: InvDiag + Diag
	sz += w * int64(len(p.part.Starts))
	if p.stencil != nil {
		sz += p.stencil.memoryBytes()
	}
	for _, v := range p.views {
		sz += v.memoryBytes()
	}
	if p.factors != nil {
		for bi := 0; bi < p.part.NumBlocks(); bi++ {
			bs := int64(p.part.Size(bi))
			sz += w*bs*bs + w*bs // packed LU + pivot vector
		}
	}
	return sz
}

// SolveWithPlan runs async-(k) relaxation reusing the prepared plan instead
// of rebuilding the per-matrix state. opt.BlockSize may be zero (it is then
// taken from the plan); a non-zero value must match the plan, as must
// opt.ExactLocal. See Solve for the one-shot entry point.
func SolveWithPlan(p *Plan, b []float64, opt Options) (Result, error) {
	if opt.BlockSize == 0 {
		opt.BlockSize = p.blockSize
	}
	if opt.BlockSize != p.blockSize {
		return Result{}, fmt.Errorf("core: Options.BlockSize %d does not match plan block size %d",
			opt.BlockSize, p.blockSize)
	}
	if opt.ExactLocal != p.exactLocal {
		return Result{}, fmt.Errorf("core: Options.ExactLocal %v does not match plan (exact local %v)",
			opt.ExactLocal, p.exactLocal)
	}
	opt = opt.withDefaults()
	if err := opt.validate(p.a, b); err != nil {
		return Result{}, err
	}
	var cert *certify.Certificate
	if opt.Certify != certify.ModeOff {
		c, err := certify.Certify(p.a, opt.CertifyOptions)
		if err != nil {
			return Result{}, fmt.Errorf("core: admission certification: %w", err)
		}
		cert = &c
		if opt.Certify == certify.ModeEnforce && c.Verdict == certify.VerdictDiverges {
			return Result{Certificate: cert}, fmt.Errorf("core: admission refused (%s): %w", c.Reason, certify.ErrDivergent)
		}
	}
	if opt.Metrics != nil {
		defer func(start time.Time) {
			opt.Metrics.observeSolve(opt.Engine.String(), time.Since(start))
		}(time.Now())
	}
	res, err := func() (Result, error) {
		switch opt.Engine {
		case EngineSimulated:
			return solveSimulated(p, b, opt)
		case EngineGoroutine:
			return solveGoroutine(p, b, opt)
		default:
			return Result{}, fmt.Errorf("core: unknown engine %v", opt.Engine)
		}
	}()
	res.Certificate = cert
	return res, err
}

// ctxErr reports a wrapped ErrCanceled when ctx is done; engines call it
// before every block execution (and at every global-iteration boundary),
// so cancellation latency is bounded by one block sweep, not one global
// iteration. A nil ctx never cancels.
func ctxErr(ctx context.Context, iter int) error {
	if ctx == nil {
		return nil
	}
	if cause := ctx.Err(); cause != nil {
		return fmt.Errorf("%w after %d global iterations: %w", ErrCanceled, iter, cause)
	}
	return nil
}
