package core

import "fmt"

// Precision names accepted by Options.Precision and
// FreeRunningOptions.Precision.
//
// PrecF32 emulates the paper-era mixed-precision GPU kernels: the iterate
// is *stored* in float32 — every published component, including the
// initial guess, is rounded through float32 — while all sweep accumulation
// runs in float64 registers and every residual check is a float64
// computation over the (float32-valued) iterate. Asynchronous relaxation
// tolerates stale reads; a rounded read is just a small perturbation of
// the same kind, so convergence is unaffected down to the f32 resolution
// floor (see docs/KERNELS.md for the tolerance argument). The empty string
// and PrecF64 are the exact double-precision default.
const (
	PrecF64 = "f64"
	PrecF32 = "f32"
)

// validatePrecision accepts "", "f64" and "f32".
func validatePrecision(s string) error {
	switch s {
	case "", PrecF64, PrecF32:
		return nil
	}
	return fmt.Errorf(`core: unknown precision %q (want "f64" or "f32")`, s)
}

// f32Writer rounds every component through float32 on its way into the
// iterate storage — the write half of the storage-precision emulation.
type f32Writer struct{ w valueWriter }

func (w f32Writer) Store(i int, v float64) { w.w.Store(i, float64(float32(v))) }

// iterateWriter wraps the engine's iterate writer for the requested
// precision; the default returns w unchanged.
func iterateWriter(precision string, w valueWriter) valueWriter {
	if precision == PrecF32 {
		return f32Writer{w}
	}
	return w
}

// roundIterate rounds x in place under f32 storage — the initial guess
// enters the iterate exactly the way every published value does. Under f64
// it is a no-op.
func roundIterate(precision string, x []float64) {
	if precision != PrecF32 {
		return
	}
	for i := range x {
		x[i] = float64(float32(x[i]))
	}
}

// f32Access keeps AfterIteration hooks from smuggling full-precision
// values into f32 iterate storage: Set rounds like the kernels' writes do.
type f32Access struct{ a VectorAccess }

func (f f32Access) Len() int             { return f.a.Len() }
func (f f32Access) Get(i int) float64    { return f.a.Get(i) }
func (f f32Access) Set(i int, v float64) { f.a.Set(i, float64(float32(v))) }

// iterateAccess wraps the AfterIteration access for the requested
// precision; the default returns a unchanged.
func iterateAccess(precision string, a VectorAccess) VectorAccess {
	if precision == PrecF32 {
		return f32Access{a}
	}
	return a
}
