package core

import (
	"math"
	"testing"

	"repro/internal/mats"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// diagHeavyMatrix builds an SPD system in which a band of rows carries only
// the diagonal entry — the "empty row" edge case for the packed staging
// (such a row has neither off-block nor local packed entries).
func diagHeavyMatrix(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4)
		// Rows in [n/3, n/2) couple to nothing; the rest form a path graph.
		if i+1 < n && (i < n/3 || i >= n/2) && (i+1 < n/3 || i+1 >= n/2) {
			c.AddSym(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// fusedCases are the partition shapes the bit-identity property is checked
// on: ragged trailing block, a single block spanning the matrix, block size
// one, and diagonal-only rows.
func fusedCases(t *testing.T) []struct {
	name      string
	a         *sparse.CSR
	blockSize int
} {
	t.Helper()
	tref := mats.Trefethen(120)
	return []struct {
		name      string
		a         *sparse.CSR
		blockSize int
	}{
		{"ragged", tref, 32},        // 120 = 3·32 + 24: ragged last block
		{"single-block", tref, 120}, // whole matrix in one subdomain
		{"unit-blocks", tref, 1},    // pure (damped) Jacobi limit
		{"diag-only-rows", diagHeavyMatrix(90), 16},
	}
}

func solveBothKernels(t *testing.T, a *sparse.CSR, bs int, opt Options) (fused, ref Result) {
	t.Helper()
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	opt.BlockSize = bs
	run := func(reference bool) Result {
		o := opt
		o.referenceKernel = reference
		res, err := Solve(a, b, o)
		if err != nil {
			t.Fatalf("solve (reference=%v): %v", reference, err)
		}
		return res
	}
	return run(false), run(true)
}

func requireBitIdentical(t *testing.T, fused, ref Result) {
	t.Helper()
	if len(fused.X) != len(ref.X) {
		t.Fatalf("length mismatch: %d vs %d", len(fused.X), len(ref.X))
	}
	for i := range fused.X {
		if math.Float64bits(fused.X[i]) != math.Float64bits(ref.X[i]) {
			t.Fatalf("x[%d] differs: fused %v (%#x) vs reference %v (%#x)",
				i, fused.X[i], math.Float64bits(fused.X[i]), ref.X[i], math.Float64bits(ref.X[i]))
		}
	}
	if math.Float64bits(fused.Residual) != math.Float64bits(ref.Residual) {
		t.Fatalf("residual differs: %v vs %v", fused.Residual, ref.Residual)
	}
	if len(fused.History) != len(ref.History) {
		t.Fatalf("history length differs: %d vs %d", len(fused.History), len(ref.History))
	}
	for i := range fused.History {
		if math.Float64bits(fused.History[i]) != math.Float64bits(ref.History[i]) {
			t.Fatalf("history[%d] differs: %v vs %v", i, fused.History[i], ref.History[i])
		}
	}
}

// TestFusedKernelBitIdenticalSimulated drives whole seeded solves down both
// kernel paths. The simulated engine is the strictest check: its racing
// off-block reader consumes one RNG draw per Load, so the iterates can only
// match bit-for-bit if the fused kernel preserves the reference kernel's
// exact Load-call order *and* floating-point operation order.
func TestFusedKernelBitIdenticalSimulated(t *testing.T) {
	for _, tc := range fusedCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			opt := Options{
				LocalIters:     3,
				Omega:          0.9,
				MaxGlobalIters: 40,
				RecordHistory:  true,
				Seed:           7,
				StaleProb:      0.3, // exercise the snapshot-reader path too
			}
			fused, ref := solveBothKernels(t, tc.a, tc.blockSize, opt)
			requireBitIdentical(t, fused, ref)
		})
	}
}

// TestFusedKernelBitIdenticalGoroutineReplay checks the concurrent engine:
// a recorded goroutine-engine schedule replays deterministically, so the
// same capture replayed down both kernel paths must agree bit-for-bit.
func TestFusedKernelBitIdenticalGoroutineReplay(t *testing.T) {
	for _, tc := range fusedCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.a
			b := make([]float64, a.Rows)
			for i := range b {
				b[i] = 1
			}
			rec := sched.NewRecorder(0)
			opt := Options{
				BlockSize: tc.blockSize, LocalIters: 2, MaxGlobalIters: 15,
				Engine: EngineGoroutine, Seed: 11, Workers: 4, Record: rec,
			}
			if _, err := Solve(a, b, opt); err != nil {
				t.Fatalf("record: %v", err)
			}
			s := rec.Schedule()
			replay := func(reference bool) Result {
				o := Options{
					BlockSize: tc.blockSize, LocalIters: 2, MaxGlobalIters: 15,
					Engine: EngineGoroutine, Replay: s, referenceKernel: reference,
					RecordHistory: true,
				}
				res, err := Solve(a, b, o)
				if err != nil {
					t.Fatalf("replay (reference=%v): %v", reference, err)
				}
				return res
			}
			requireBitIdentical(t, replay(false), replay(true))
		})
	}
}

// TestFusedKernelBitIdenticalFreeRunningReplay checks the barrier-free
// engine the same way: one recorded free-running schedule, replayed with
// the capture's worker topology, down both kernel paths.
func TestFusedKernelBitIdenticalFreeRunningReplay(t *testing.T) {
	for _, tc := range fusedCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.a
			b := make([]float64, a.Rows)
			for i := range b {
				b[i] = 1
			}
			rec := sched.NewRecorder(0)
			opt := FreeRunningOptions{
				BlockSize: tc.blockSize, LocalIters: 2,
				MaxBlockUpdates: 600, Tolerance: 1e-12, Workers: 3, Record: rec,
			}
			if _, err := SolveFreeRunning(a, b, opt); err != nil {
				t.Fatalf("record: %v", err)
			}
			s := rec.Schedule()
			replay := func(reference bool) FreeRunningResult {
				o := FreeRunningOptions{
					BlockSize: tc.blockSize, LocalIters: 2, Tolerance: 1e-12,
					Replay: s, referenceKernel: reference,
				}
				res, err := SolveFreeRunning(a, b, o)
				if err != nil {
					t.Fatalf("replay (reference=%v): %v", reference, err)
				}
				return res
			}
			f, r := replay(false), replay(true)
			for i := range f.X {
				if math.Float64bits(f.X[i]) != math.Float64bits(r.X[i]) {
					t.Fatalf("x[%d] differs: fused %v vs reference %v", i, f.X[i], r.X[i])
				}
			}
			if math.Float64bits(f.Residual) != math.Float64bits(r.Residual) {
				t.Fatalf("residual differs: %v vs %v", f.Residual, r.Residual)
			}
		})
	}
}

// TestKernelDeltaMatchesUpdateNorm pins the meaning of the kernels' return
// value: the squared l2 norm of the block's published update.
func TestKernelDeltaMatchesUpdateNorm(t *testing.T) {
	a := mats.Trefethen(64)
	sp, err := sparse.NewSplitting(a)
	if err != nil {
		t.Fatal(err)
	}
	part := sparse.NewBlockPartition(a.Rows, 20)
	views, staged := buildBlockViews(a, part)
	if !staged {
		t.Fatal("expected staged views")
	}
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
		x[i] = float64(i) / 10
	}
	scr := newKernelScratch(part.Size(0))
	for bi := 0; bi < part.NumBlocks(); bi++ {
		before := append([]float64(nil), x...)
		d2 := runBlockKernel(a, sp, b, &views[bi], 3, &updateRule{omega: 1}, sliceReader(before), sliceReader(before), sliceWriter(x), scr)
		var want float64
		lo, hi := part.Bounds(bi)
		for i := lo; i < hi; i++ {
			d := x[i] - before[i]
			want += d * d
		}
		if math.Abs(d2-want) > 1e-12*(1+want) {
			t.Fatalf("block %d: delta² %v, recomputed %v", bi, d2, want)
		}
		ref := runBlockKernelReference(a, sp, b, &views[bi], 3, &updateRule{omega: 1}, sliceReader(before), sliceReader(before), sliceWriter(x), scr)
		if math.Float64bits(ref) != math.Float64bits(d2) {
			t.Fatalf("block %d: fused delta² %v != reference delta² %v", bi, d2, ref)
		}
	}
}
