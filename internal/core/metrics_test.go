package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/mats"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// TestSolveMetricsSimulated checks the deterministic engine's counter
// arithmetic: with MaxGlobalIters fixed and no stopping test, iterations,
// block sweeps and the residual ring are exact functions of the
// configuration.
func TestSolveMetricsSimulated(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	b := onesRHS(a)
	reg := metrics.NewRegistry()
	sm := NewSolveMetrics(reg, 8)
	const iters = 3
	res, err := Solve(a, b, Options{
		BlockSize: 32, LocalIters: 2, MaxGlobalIters: iters,
		Seed: 7, Metrics: sm,
	})
	if err != nil {
		t.Fatal(err)
	}
	nb := res.NumBlocks
	em := sm.engine("simulated")
	if got := em.iterations.Value(); got != iters {
		t.Errorf("iterations counter = %d, want %d", got, iters)
	}
	if got := em.blockSweeps.Value(); got != uint64(iters*nb) {
		t.Errorf("block sweeps = %d, want %d", got, iters*nb)
	}
	if got := sm.ResidualsObserved(); got != iters {
		t.Errorf("residuals observed = %d, want %d (one per global iteration)", got, iters)
	}
	hist := sm.ResidualHistory()
	if len(hist) != iters {
		t.Fatalf("residual history length = %d, want %d", len(hist), iters)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i] >= hist[i-1] {
			t.Errorf("residual did not decrease: history = %v", hist)
		}
	}
	if last, ok := sm.LastResidual(); !ok || last != hist[len(hist)-1] {
		t.Errorf("LastResidual = %g,%v, want %g,true", last, ok, hist[len(hist)-1])
	}
}

// TestSolveMetricsDoNotChangeResults pins the "observation is passive"
// contract: an instrumented solve must produce bit-identical iterates to an
// uninstrumented one with the same seed, even though Metrics forces
// residual computation every iteration.
func TestSolveMetricsDoNotChangeResults(t *testing.T) {
	a := mats.Trefethen(600)
	b := onesRHS(a)
	base := Options{BlockSize: 64, LocalIters: 5, MaxGlobalIters: 10, Seed: 42}

	plain, err := Solve(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	instrumented := base
	instrumented.Metrics = NewSolveMetrics(metrics.NewRegistry(), 16)
	obs, err := Solve(a, b, instrumented)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.X {
		if plain.X[i] != obs.X[i] {
			t.Fatalf("x[%d] differs: %g (plain) vs %g (instrumented)", i, plain.X[i], obs.X[i])
		}
	}
	if plain.GlobalIterations != obs.GlobalIterations {
		t.Fatalf("iteration counts differ: %d vs %d", plain.GlobalIterations, obs.GlobalIterations)
	}
}

// TestSolveMetricsStaleAndChaos checks the stale-read and chaos-injection
// counters: StaleProb 1 makes every block execution a stale read, and a
// firing StaleRead hook is counted as an injection.
func TestSolveMetricsStaleAndChaos(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	b := onesRHS(a)
	reg := metrics.NewRegistry()
	sm := NewSolveMetrics(reg, 8)
	const iters = 2
	var delays int
	res, err := Solve(a, b, Options{
		BlockSize: 24, LocalIters: 1, MaxGlobalIters: iters,
		Seed: 3, StaleProb: 1, Metrics: sm,
		Chaos: &ChaosHooks{
			Delay:     func(iter, block int) { delays++ },
			StaleRead: func(iter, block int) bool { return block == 0 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	em := sm.engine("simulated")
	wantSweeps := uint64(iters * res.NumBlocks)
	if got := em.staleReads.Value(); got != wantSweeps {
		t.Errorf("stale reads = %d, want %d (StaleProb=1)", got, wantSweeps)
	}
	// One delay per block execution plus one forced stale read per
	// iteration (block 0).
	wantChaos := wantSweeps + iters
	if got := em.chaosInjections.Value(); got != wantChaos {
		t.Errorf("chaos injections = %d, want %d", got, wantChaos)
	}
	if delays != int(wantSweeps) {
		t.Errorf("delay hook fired %d times, want %d", delays, wantSweeps)
	}
}

// TestSolveMetricsGoroutineAndReplay covers the concurrent engine's
// counters and the replay-event counter.
func TestSolveMetricsGoroutineAndReplay(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	b := onesRHS(a)
	reg := metrics.NewRegistry()
	sm := NewSolveMetrics(reg, 8)
	rec := sched.NewRecorder(0)
	const iters = 2
	res, err := Solve(a, b, Options{
		BlockSize: 24, LocalIters: 1, MaxGlobalIters: iters,
		Seed: 5, Engine: EngineGoroutine, Workers: 4,
		Metrics: sm, Record: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	em := sm.engine("goroutine")
	wantSweeps := uint64(iters * res.NumBlocks)
	if got := em.iterations.Value(); got != iters {
		t.Errorf("goroutine iterations = %d, want %d", got, iters)
	}
	if got := em.blockSweeps.Value(); got != wantSweeps {
		t.Errorf("goroutine block sweeps = %d, want %d", got, wantSweeps)
	}
	if got := em.replayEvents.Value(); got != 0 {
		t.Errorf("live run recorded %d replay events, want 0", got)
	}

	// Replay the capture through the simulated engine: every event must be
	// counted under the simulated label.
	s := rec.Schedule()
	reg2 := metrics.NewRegistry()
	sm2 := NewSolveMetrics(reg2, 8)
	if _, err := Solve(a, b, Options{
		BlockSize: 24, LocalIters: 1, MaxGlobalIters: iters,
		Replay: s, Metrics: sm2,
	}); err != nil {
		t.Fatal(err)
	}
	em2 := sm2.engine("simulated")
	if got := em2.replayEvents.Value(); got != uint64(len(s.Events)) {
		t.Errorf("replay events = %d, want %d", got, len(s.Events))
	}
	if got := em2.blockSweeps.Value(); got != uint64(len(s.Events)) {
		t.Errorf("replayed block sweeps = %d, want %d", got, len(s.Events))
	}
}

// TestSolveMetricsFreeRunning checks the free-running engine's counters
// and monitor residual tracing.
func TestSolveMetricsFreeRunning(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	b := onesRHS(a)
	reg := metrics.NewRegistry()
	sm := NewSolveMetrics(reg, 32)
	res, err := SolveFreeRunning(a, b, FreeRunningOptions{
		BlockSize: 24, LocalIters: 2, MaxBlockUpdates: 5000,
		Tolerance: 1e-8, Workers: 4, CheckEvery: 8, Metrics: sm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("free-running solve did not converge (residual %g)", res.Residual)
	}
	em := sm.engine("freerunning")
	if got := em.blockSweeps.Value(); got != uint64(res.BlockUpdates) {
		t.Errorf("free-running block sweeps = %d, want %d", got, res.BlockUpdates)
	}
	if sm.ResidualsObserved() == 0 {
		t.Error("monitor pushed no residuals to the ring")
	}
	if em.solveSeconds.Count() != 1 {
		t.Errorf("solve duration observations = %d, want 1", em.solveSeconds.Count())
	}
}

// TestSolveMetricsExposition asserts the instrumented families render in
// the registry's text exposition — the series the /metricsz acceptance
// criterion requires.
func TestSolveMetricsExposition(t *testing.T) {
	a := mats.Poisson2D(8, 8)
	b := onesRHS(a)
	reg := metrics.NewRegistry()
	sm := NewSolveMetrics(reg, 8)
	if _, err := Solve(a, b, Options{
		BlockSize: 16, LocalIters: 1, MaxGlobalIters: 1, Seed: 1, Metrics: sm,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`core_global_iterations_total{engine="simulated"} 1`,
		`core_global_iterations_total{engine="goroutine"} 0`,
		`core_global_iterations_total{engine="freerunning"} 0`,
		`# TYPE core_solve_seconds histogram`,
		`core_block_sweeps_total{engine="simulated"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestCancelWithinOneSweep is the satellite fix's proof: a solve on
// Trefethen_2000 with k=5 whose context is canceled mid-sweep must return
// before the first global iteration completes — i.e. cancellation latency
// is one block sweep, not one global iteration. The chaos Delay hook
// (which runs before each block execution) cancels after the third block
// and counts subsequent executions.
func TestCancelWithinOneSweep(t *testing.T) {
	a := mats.MustGenerate("Trefethen_2000").A
	b := onesRHS(a)

	for _, tc := range []struct {
		name    string
		engine  EngineKind
		workers int
		slack   int // extra in-flight blocks allowed after cancel
	}{
		// The simulated engine is sequential: the block after the
		// canceling one must never execute.
		{"simulated", EngineSimulated, 0, 0},
		// The goroutine engine stops dispatching once canceled; only the
		// blocks already in flight (≤ workers) may still run.
		{"goroutine", EngineGoroutine, 4, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const cancelAfter = 3
			var executed int
			res, err := Solve(a, b, Options{
				BlockSize: 32, LocalIters: 5, MaxGlobalIters: 50,
				Seed: 11, Engine: tc.engine, Workers: tc.workers, Ctx: ctx,
				Chaos: &ChaosHooks{Delay: func(iter, block int) {
					if executed++; executed == cancelAfter {
						cancel()
					}
				}},
			})
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
			if res.GlobalIterations != 0 {
				t.Errorf("GlobalIterations = %d, want 0 (canceled inside the first sweep)",
					res.GlobalIterations)
			}
			nb := (a.Rows + 31) / 32
			if executed > cancelAfter+tc.slack {
				t.Errorf("%d blocks executed after cancel (total %d of %d), want ≤ %d",
					executed-cancelAfter, executed, nb, cancelAfter+tc.slack)
			}
			if executed >= nb {
				t.Errorf("all %d blocks of the sweep executed; cancellation waited for the iteration boundary", nb)
			}
		})
	}
}

// TestCancelWithinOneSweepReplay proves the same granularity for the
// replayed simulated engine.
func TestCancelWithinOneSweepReplay(t *testing.T) {
	a := mats.Trefethen(600)
	b := onesRHS(a)
	rec := sched.NewRecorder(0)
	if _, err := Solve(a, b, Options{
		BlockSize: 32, LocalIters: 5, MaxGlobalIters: 2, Seed: 9, Record: rec,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first event
	res, err := Solve(a, b, Options{
		BlockSize: 32, LocalIters: 5, MaxGlobalIters: 2,
		Replay: rec.Schedule(), Ctx: ctx,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res.GlobalIterations != 0 {
		t.Errorf("GlobalIterations = %d, want 0", res.GlobalIterations)
	}
}
