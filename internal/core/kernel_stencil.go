package core

import (
	"repro/internal/sparse"
)

// runBlockKernelStencil is the matrix-free fast path for constant-
// coefficient stencil operators. The gather and publish passes are exactly
// runBlockKernel's; the k local sweeps walk the block's precomputed fast
// spans (buildStencilSpans) — maximal runs of interior rows whose whole
// stencil lies inside the block:
//
//   - rows inside a span run the branch-free fast loop — offsets and
//     coefficients live in locals, no column index is loaded and no per-row
//     class test executes;
//   - the gaps between spans go to the ranged slow path in one call per
//     gap: straddling interior rows test each offset against the block
//     bounds (the off-block part is already frozen in s, still no column
//     loads), boundary rows (domain edges, perturbed rows) stream the
//     packed CSR arrays, identical to runBlockKernel.
//
// Every class subtracts its row's non-diagonal entries in ascending column
// order and applies the same (1−ω)·x + ω·acc·d⁻¹ update, so iterates are
// bit-identical to the CSR kernels and IterateView.Load consumption is
// unchanged (the simulated engine's racing reader draws the same RNG
// sequence) — property-tested in kernel_dispatch_test.go.
func (p *Plan) runBlockKernelStencil(a *sparse.CSR, sp *sparse.Splitting, b []float64, v *blockView,
	k int, rule *updateRule, offRead, locRead valueReader, write valueWriter, scr *kernelScratch) float64 {

	omega := rule.omega
	sd := p.stencil
	bs := v.hi - v.lo
	s := scr.s[:bs]
	xloc := scr.xloc[:bs]
	xnew := scr.xnew[:bs]
	x0 := scr.x0[:bs]
	invd := sp.InvDiag[v.lo:v.hi]

	// Fused gather, identical to runBlockKernel: interior rows have no
	// off-block entries unless they straddle the block boundary, and the
	// packed off arrays hold exactly those stencil points in ascending
	// column order.
	for r := 0; r < bs; r++ {
		acc := b[v.lo+r]
		for e := v.offPtr[r]; e < v.offPtr[r+1]; e++ {
			acc -= v.offVal[e] * offRead.Load(int(v.offCols[e]))
		}
		s[r] = acc
		xv := locRead.Load(v.lo + r)
		xloc[r] = xv
		x0[r] = xv
	}

	if rule.beta != 0 && rule.prev != nil {
		// Momentum: the first-order sweep helper fills xnew, the β-term is
		// applied as a post-pass — floating-point-identical to the CSR
		// kernels' inline form, fl(fl(first-order) + fl(β·Δ)) — and the
		// three buffers rotate so x_k becomes the next sweep's x_{k−1}.
		beta := rule.beta
		xprev := scr.xprev[:bs]
		prev := rule.prev[v.lo:v.hi]
		copy(xprev, prev)
		for sweep := 0; sweep < k; sweep++ {
			switch len(sd.offs) {
			case 4:
				stencilSweep4(sd, v, s, xloc, xnew, invd, omega, bs)
			case 8:
				stencilSweep8(sd, v, s, xloc, xnew, invd, omega, bs)
			default:
				stencilSweepN(sd, v, s, xloc, xnew, invd, omega, bs)
			}
			for r := 0; r < bs; r++ {
				xnew[r] += beta * (xloc[r] - xprev[r])
			}
			xprev, xloc, xnew = xloc, xnew, xprev
		}
		storeMomentum(prev, xprev, rule.f32)
	} else {
		// k local sweeps over the fast spans.
		for sweep := 0; sweep < k; sweep++ {
			switch len(sd.offs) {
			case 4:
				stencilSweep4(sd, v, s, xloc, xnew, invd, omega, bs)
			case 8:
				stencilSweep8(sd, v, s, xloc, xnew, invd, omega, bs)
			default:
				stencilSweepN(sd, v, s, xloc, xnew, invd, omega, bs)
			}
			xloc, xnew = xnew, xloc
		}
	}

	// Publish, identical to runBlockKernel.
	var d2 float64
	for r := 0; r < bs; r++ {
		nv := xloc[r]
		write.Store(v.lo+r, nv)
		d := nv - x0[r]
		d2 += d * d
	}
	return d2
}

// stencilRowsSlow sweeps the rows of [lo, hi) that sit outside the fast
// spans: straddling interior rows (per-offset bounds test, no column loads)
// and boundary rows (packed CSR). One call covers a whole gap, so the call
// overhead amortizes over the run instead of recurring per row.
func stencilRowsSlow(sd *stencilData, v *blockView,
	s, xloc, xnew, invd []float64, omega float64, bs, lo, hi int) {

	interior := sd.interior[v.lo:v.hi]
	offs, coeffs := sd.offs, sd.coeffs
	for r := lo; r < hi; r++ {
		acc := s[r]
		if interior[r] {
			for p, d := range offs {
				if j := r + d; uint(j) < uint(bs) {
					acc -= coeffs[p] * xloc[j]
				}
			}
		} else {
			for e := v.locPtr[r]; e < v.locPtr[r+1]; e++ {
				acc -= v.locVal[e] * xloc[v.locCols[e]]
			}
		}
		xnew[r] = (1-omega)*xloc[r] + omega*acc*invd[r]
	}
}

// stencilSweep4 is the 5-point specialization (Poisson2D): the four
// off-diagonal coefficients and offsets are locals, and the span rows run
// with no class tests and no memory loads beyond s and the iterate.
func stencilSweep4(sd *stencilData, v *blockView,
	s, xloc, xnew, invd []float64, omega float64, bs int) {

	d0, d1, d2, d3 := sd.offs[0], sd.offs[1], sd.offs[2], sd.offs[3]
	c0, c1, c2, c3 := sd.coeffs[0], sd.coeffs[1], sd.coeffs[2], sd.coeffs[3]
	prev := 0
	for _, span := range v.stSpans {
		lo, hi := int(span.lo), int(span.hi)
		if prev < lo {
			stencilRowsSlow(sd, v, s, xloc, xnew, invd, omega, bs, prev, lo)
		}
		// Length-matched subslices: every operand slice has exactly the
		// span's length, so the compiler proves all index expressions in
		// bounds and the loop runs check-free.
		n := hi - lo
		sv, xc := s[lo:hi:hi], xloc[lo:hi:hi]
		nv, iv := xnew[lo:hi:hi], invd[lo:hi:hi]
		x0s := xloc[lo+d0 : lo+d0+n : lo+d0+n]
		x1s := xloc[lo+d1 : lo+d1+n : lo+d1+n]
		x2s := xloc[lo+d2 : lo+d2+n : lo+d2+n]
		x3s := xloc[lo+d3 : lo+d3+n : lo+d3+n]
		for i := range sv {
			acc := sv[i] - c0*x0s[i] - c1*x1s[i] - c2*x2s[i] - c3*x3s[i]
			nv[i] = (1-omega)*xc[i] + omega*acc*iv[i]
		}
		prev = hi
	}
	if prev < bs {
		stencilRowsSlow(sd, v, s, xloc, xnew, invd, omega, bs, prev, bs)
	}
}

// stencilSweep8 is the 9-point specialization (fv, s1rmt3m1).
func stencilSweep8(sd *stencilData, v *blockView,
	s, xloc, xnew, invd []float64, omega float64, bs int) {

	d0, d1, d2, d3 := sd.offs[0], sd.offs[1], sd.offs[2], sd.offs[3]
	d4, d5, d6, d7 := sd.offs[4], sd.offs[5], sd.offs[6], sd.offs[7]
	c0, c1, c2, c3 := sd.coeffs[0], sd.coeffs[1], sd.coeffs[2], sd.coeffs[3]
	c4, c5, c6, c7 := sd.coeffs[4], sd.coeffs[5], sd.coeffs[6], sd.coeffs[7]
	prev := 0
	for _, span := range v.stSpans {
		lo, hi := int(span.lo), int(span.hi)
		if prev < lo {
			stencilRowsSlow(sd, v, s, xloc, xnew, invd, omega, bs, prev, lo)
		}
		// Length-matched subslices, as in stencilSweep4: check-free loop.
		n := hi - lo
		sv, xc := s[lo:hi:hi], xloc[lo:hi:hi]
		nv, iv := xnew[lo:hi:hi], invd[lo:hi:hi]
		x0s := xloc[lo+d0 : lo+d0+n : lo+d0+n]
		x1s := xloc[lo+d1 : lo+d1+n : lo+d1+n]
		x2s := xloc[lo+d2 : lo+d2+n : lo+d2+n]
		x3s := xloc[lo+d3 : lo+d3+n : lo+d3+n]
		x4s := xloc[lo+d4 : lo+d4+n : lo+d4+n]
		x5s := xloc[lo+d5 : lo+d5+n : lo+d5+n]
		x6s := xloc[lo+d6 : lo+d6+n : lo+d6+n]
		x7s := xloc[lo+d7 : lo+d7+n : lo+d7+n]
		for i := range sv {
			acc := sv[i] - c0*x0s[i] - c1*x1s[i] - c2*x2s[i] - c3*x3s[i]
			acc = acc - c4*x4s[i] - c5*x5s[i] - c6*x6s[i] - c7*x7s[i]
			nv[i] = (1-omega)*xc[i] + omega*acc*iv[i]
		}
		prev = hi
	}
	if prev < bs {
		stencilRowsSlow(sd, v, s, xloc, xnew, invd, omega, bs, prev, bs)
	}
}

// stencilSweepN is the generic fallback for other stencil widths,
// including the width-1 pure-diagonal case (1×1 grids).
func stencilSweepN(sd *stencilData, v *blockView,
	s, xloc, xnew, invd []float64, omega float64, bs int) {

	offs, coeffs := sd.offs, sd.coeffs
	prev := 0
	for _, span := range v.stSpans {
		lo, hi := int(span.lo), int(span.hi)
		if prev < lo {
			stencilRowsSlow(sd, v, s, xloc, xnew, invd, omega, bs, prev, lo)
		}
		for r := lo; r < hi; r++ {
			acc := s[r]
			for p, d := range offs {
				acc -= coeffs[p] * xloc[r+d]
			}
			xnew[r] = (1-omega)*xloc[r] + omega*acc*invd[r]
		}
		prev = hi
	}
	if prev < bs {
		stencilRowsSlow(sd, v, s, xloc, xnew, invd, omega, bs, prev, bs)
	}
}
