package core

import (
	"fmt"

	"repro/internal/certify"
	"repro/internal/sparse"
	"repro/internal/spectral"
)

// Certify runs the admission-time convergence certifier on A: it
// classifies the matrix, derives a Converges/Diverges/Unknown verdict
// with its spectral evidence, and prices a Converges verdict with the
// predicted iterations-to-tolerance. Options zero value uses the
// certifier defaults. See package repro/internal/certify for the theory
// and Options.Certify for the in-solve enforcement hook.
func Certify(a *sparse.CSR, opt certify.Options) (certify.Certificate, error) {
	return certify.Certify(a, opt)
}

// ConvergenceReport is the paper's pre-flight analysis (§2.2, §3.1) as a
// typed result: which convergence guarantees hold for a given system.
type ConvergenceReport struct {
	// RhoB is ρ(B), B = I − D⁻¹A: Jacobi converges iff RhoB < 1.
	RhoB float64
	// RhoAbsB is ρ(|B|): Strikwerda's sufficient condition — the
	// asynchronous iteration converges for *every* admissible update and
	// shift function iff RhoAbsB < 1.
	RhoAbsB float64
	// StrictlyDiagonallyDominant implies both conditions analytically.
	StrictlyDiagonallyDominant bool
	// JacobiConverges and AsyncGuaranteed summarize the two thresholds.
	JacobiConverges bool
	AsyncGuaranteed bool
	// SuggestedTau is the §4.2 damping τ = 2/(λ₁+λ_n) of D⁻¹A, populated
	// when the plain iteration is not guaranteed (RhoB ≥ 1) and the matrix
	// is SPD-normalizable; 0 otherwise.
	SuggestedTau float64
}

// String renders the report as the advice the paper gives per system.
func (r ConvergenceReport) String() string {
	switch {
	case r.AsyncGuaranteed:
		return fmt.Sprintf("rho(B)=%.4f, rho(|B|)=%.4f: asynchronous convergence guaranteed (Strikwerda)", r.RhoB, r.RhoAbsB)
	case r.JacobiConverges:
		return fmt.Sprintf("rho(B)=%.4f < 1 <= rho(|B|)=%.4f: Jacobi converges; asynchronous convergence not guaranteed for all schedules", r.RhoB, r.RhoAbsB)
	case r.SuggestedTau > 0:
		return fmt.Sprintf("rho(B)=%.4f >= 1: plain relaxation diverges; use the scaled iteration with tau=%.4f (paper §4.2)", r.RhoB, r.SuggestedTau)
	default:
		return fmt.Sprintf("rho(B)=%.4f >= 1: plain relaxation diverges", r.RhoB)
	}
}

// CheckConvergence runs the paper's convergence-theory checks on A.
// lanczosSteps bounds the τ estimation effort (used only when ρ(B) ≥ 1).
func CheckConvergence(a *sparse.CSR, lanczosSteps int, seed int64) (ConvergenceReport, error) {
	if a.Rows != a.Cols {
		return ConvergenceReport{}, fmt.Errorf("core: CheckConvergence requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	var r ConvergenceReport
	r.StrictlyDiagonallyDominant = a.IsStrictlyDiagonallyDominant()

	rho, err := spectral.JacobiSpectralRadius(a, seed)
	if err != nil && rho == 0 {
		return r, fmt.Errorf("core: ρ(B): %w", err)
	}
	r.RhoB = rho
	rhoAbs, err := spectral.AbsJacobiSpectralRadius(a, seed)
	if err != nil && rhoAbs == 0 {
		return r, fmt.Errorf("core: ρ(|B|): %w", err)
	}
	r.RhoAbsB = rhoAbs
	r.JacobiConverges = r.RhoB < 1
	r.AsyncGuaranteed = r.RhoAbsB < 1

	if !r.JacobiConverges {
		if tau, terr := spectral.TauScaling(a, lanczosSteps, seed); terr == nil {
			r.SuggestedTau = tau
		}
	}
	return r, nil
}
