package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mats"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// dispatchKernels are the three explicit kernel choices every consistency
// test compares; KernelCSR is the anchor.
var dispatchKernels = []KernelKind{KernelCSR, KernelStencil, KernelSELL}

// dispatchCases are stencil-family matrices with block sizes chosen so
// blocks contain all three row classes: full-in-block fast rows, interior
// rows straddling a block boundary, and domain-boundary rows.
func dispatchCases() []struct {
	name      string
	a         *sparse.CSR
	blockSize int
} {
	return []struct {
		name      string
		a         *sparse.CSR
		blockSize int
	}{
		{"fv_30x20", mats.FV(30, 20, 1.368), 64},
		{"fv_17x11_ragged", mats.FV(17, 11, 0.5), 48}, // 187 = 3·48 + 43
		{"poisson_24x25", mats.Poisson2D(24, 25), 96},
		{"s1rmt3m1_300", mats.S1RMT3M1(300), 64},
		{"poisson_1x1", mats.Poisson2D(1, 1), 4}, // width-1 stencil, single row
	}
}

func planForKernel(t *testing.T, a *sparse.CSR, bs int, k KernelKind) *Plan {
	t.Helper()
	p, err := NewPlanWithConfig(a, bs, false, PlanConfig{Kernel: k})
	if err != nil {
		t.Fatalf("plan (%v): %v", k, err)
	}
	if p.Kernel() != k {
		t.Fatalf("plan resolved kernel %v, want %v", p.Kernel(), k)
	}
	return p
}

func TestKernelAutoDispatch(t *testing.T) {
	fv := mats.FV(20, 16, 1.368)
	p, err := NewPlan(fv, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernel() != KernelStencil {
		t.Fatalf("auto plan on fv: kernel %v, want stencil", p.Kernel())
	}
	si := p.StencilInfo()
	if si == nil || si.InteriorRows != 18*14 {
		t.Fatalf("auto plan on fv: stencil info %+v", si)
	}

	tref := mats.Trefethen(120)
	p, err = NewPlan(tref, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernel() != KernelCSR {
		t.Fatalf("auto plan on trefethen: kernel %v, want csr", p.Kernel())
	}
	if p.StencilInfo() != nil {
		t.Fatal("csr plan should carry no stencil info")
	}
	if p.SELLSlotRatio() != 0 {
		t.Fatal("csr plan should report no SELL slot ratio")
	}

	// Exact-local plans never run the sweep kernel; auto resolves to CSR.
	p, err = NewPlan(fv, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernel() != KernelCSR {
		t.Fatalf("auto exact-local plan: kernel %v, want csr", p.Kernel())
	}

	// Explicit SELL builds the sliced layout on any staged matrix.
	p = planForKernel(t, tref, 32, KernelSELL)
	if r := p.SELLSlotRatio(); r < 1 {
		t.Fatalf("SELL slot ratio %v, want >= 1", r)
	}

	// Explicit stencil on a non-stencil matrix fails plan construction.
	if _, err := NewPlanWithConfig(tref, 32, false, PlanConfig{Kernel: KernelStencil}); err == nil {
		t.Fatal("explicit stencil on trefethen: want error")
	}

	// A declared spec drives the stencil without detection.
	poisson := mats.Poisson2D(12, 12)
	spec := &sparse.StencilSpec{Offsets: []int{-12, -1, 0, 1, 12}, Coeffs: []float64{-1, -1, 4, -1, -1}}
	p, err = NewPlanWithConfig(poisson, 36, false, PlanConfig{Stencil: spec})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernel() != KernelStencil || p.StencilInfo().InteriorRows != 10*10 {
		t.Fatalf("declared spec: kernel %v, info %+v", p.Kernel(), p.StencilInfo())
	}

	// A declared spec that matches no row is a construction error.
	bad := &sparse.StencilSpec{Offsets: []int{-1, 0, 1}, Coeffs: []float64{-9, 4, -9}}
	if _, err := NewPlanWithConfig(poisson, 36, false, PlanConfig{Stencil: bad}); err == nil ||
		!strings.Contains(err.Error(), "matches no row") {
		t.Fatalf("mismatched declared spec: err = %v", err)
	}
}

func TestParseKernel(t *testing.T) {
	for s, want := range map[string]KernelKind{
		"": KernelAuto, "auto": KernelAuto, "csr": KernelCSR,
		"stencil": KernelStencil, "SELL": KernelSELL,
	} {
		k, err := ParseKernel(s)
		if err != nil || k != want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v", s, k, err, want)
		}
		if s != "" && k.String() != strings.ToLower(s) {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	if _, err := ParseKernel("ellpack"); err == nil {
		t.Error("ParseKernel(ellpack): want error")
	}
}

// TestKernelConsistencyShortFV is the CI -short consistency gate: on the
// fv stencil family, solves dispatched through the stencil and SELL
// kernels must be bit-identical to the packed-CSR baseline under the
// seeded simulated engine, whose racing reader makes Load-order divergence
// impossible to miss. FVTiled rides along under KernelAuto: whatever the
// detector decides for the permuted operator must not change the result.
func TestKernelConsistencyShortFV(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
		bs   int
	}{
		{"fv_30x20", mats.FV(30, 20, 1.368), 64},
		{"fv_12x9", mats.FV(12, 9, 1.368), 32},
		{"fvtiled_20x16_auto", mats.FVTiled(20, 16, 1.368), 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := make([]float64, tc.a.Rows)
			for i := range b {
				b[i] = 1 + float64(i%5)/3
			}
			opt := Options{
				BlockSize: tc.bs, LocalIters: 3, Omega: 0.9,
				MaxGlobalIters: 30, RecordHistory: true,
				Seed: 23, StaleProb: 0.25,
			}
			base, err := SolveWithPlan(planForKernel(t, tc.a, tc.bs, KernelCSR), b, opt)
			if err != nil {
				t.Fatal(err)
			}
			kernels := []KernelKind{KernelSELL, KernelAuto}
			if _, ok := sparse.DetectStencil(tc.a); ok {
				kernels = append(kernels, KernelStencil)
			}
			for _, k := range kernels {
				p, err := NewPlanWithConfig(tc.a, tc.bs, false, PlanConfig{Kernel: k})
				if err != nil {
					t.Fatalf("plan (%v): %v", k, err)
				}
				res, err := SolveWithPlan(p, b, opt)
				if err != nil {
					t.Fatalf("solve (%v): %v", k, err)
				}
				requireBitIdentical(t, res, base)
			}
		})
	}
}

// TestKernelConsistencySimulated extends the bitwise check to the other
// stencil-family operators and the explicit three-kernel matrix.
func TestKernelConsistencySimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestKernelConsistencyShortFV in -short mode")
	}
	for _, tc := range dispatchCases() {
		t.Run(tc.name, func(t *testing.T) {
			b := make([]float64, tc.a.Rows)
			for i := range b {
				b[i] = 1 + float64(i%7)/7
			}
			opt := Options{
				BlockSize: tc.blockSize, LocalIters: 3, Omega: 1.1,
				MaxGlobalIters: 40, RecordHistory: true,
				Seed: 7, StaleProb: 0.3,
			}
			var base Result
			for i, k := range dispatchKernels {
				res, err := SolveWithPlan(planForKernel(t, tc.a, tc.blockSize, k), b, opt)
				if err != nil {
					t.Fatalf("solve (%v): %v", k, err)
				}
				if i == 0 {
					base = res
					continue
				}
				requireBitIdentical(t, res, base)
			}
		})
	}
}

// TestKernelConsistencyGoroutineReplay replays one recorded concurrent
// schedule through all three kernels: bit-identical iterates mean the
// stencil and SELL sweeps preserve the CSR kernel's operation order under
// a real interleaving, not just the sequential emulation.
func TestKernelConsistencyGoroutineReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay consistency is not part of the -short gate")
	}
	for _, tc := range dispatchCases() {
		t.Run(tc.name, func(t *testing.T) {
			b := make([]float64, tc.a.Rows)
			for i := range b {
				b[i] = 1
			}
			rec := sched.NewRecorder(0)
			recOpt := Options{
				BlockSize: tc.blockSize, LocalIters: 2, MaxGlobalIters: 12,
				Engine: EngineGoroutine, Seed: 11, Workers: 4, Record: rec,
			}
			if _, err := SolveWithPlan(planForKernel(t, tc.a, tc.blockSize, KernelCSR), b, recOpt); err != nil {
				t.Fatalf("record: %v", err)
			}
			s := rec.Schedule()
			var base Result
			for i, k := range dispatchKernels {
				opt := Options{
					BlockSize: tc.blockSize, LocalIters: 2, MaxGlobalIters: 12,
					Engine: EngineGoroutine, Replay: s, RecordHistory: true,
				}
				res, err := SolveWithPlan(planForKernel(t, tc.a, tc.blockSize, k), b, opt)
				if err != nil {
					t.Fatalf("replay (%v): %v", k, err)
				}
				if i == 0 {
					base = res
					continue
				}
				requireBitIdentical(t, res, base)
			}
		})
	}
}

// TestKernelConsistencyFreeRunningReplay does the same for the
// barrier-free engine.
func TestKernelConsistencyFreeRunningReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay consistency is not part of the -short gate")
	}
	for _, tc := range dispatchCases() {
		t.Run(tc.name, func(t *testing.T) {
			b := make([]float64, tc.a.Rows)
			for i := range b {
				b[i] = 1
			}
			rec := sched.NewRecorder(0)
			recOpt := FreeRunningOptions{
				BlockSize: tc.blockSize, LocalIters: 2,
				MaxBlockUpdates: 500, Tolerance: 1e-12, Workers: 3, Record: rec,
			}
			if _, err := SolveFreeRunning(tc.a, b, recOpt); err != nil {
				t.Fatalf("record: %v", err)
			}
			s := rec.Schedule()
			var base FreeRunningResult
			for i, k := range dispatchKernels {
				p := planForKernel(t, tc.a, tc.blockSize, k)
				res, err := SolveFreeRunningWithPlan(p, b, FreeRunningOptions{
					BlockSize: tc.blockSize, LocalIters: 2, Tolerance: 1e-12, Replay: s,
				})
				if err != nil {
					t.Fatalf("replay (%v): %v", k, err)
				}
				if i == 0 {
					base = res
					continue
				}
				for j := range res.X {
					if math.Float64bits(res.X[j]) != math.Float64bits(base.X[j]) {
						t.Fatalf("kernel %v: x[%d] = %v, csr %v", k, j, res.X[j], base.X[j])
					}
				}
				if math.Float64bits(res.Residual) != math.Float64bits(base.Residual) {
					t.Fatalf("kernel %v: residual %v, csr %v", k, res.Residual, base.Residual)
				}
			}
		})
	}
}

// TestKernelConsistencySharded runs the sharded executor (sequential mode
// is deterministic per seed) across the kernel dispatches.
func TestKernelConsistencySharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded consistency is not part of the -short gate")
	}
	a := mats.FV(20, 20, 1.368)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	opt := Options{
		BlockSize: 50, LocalIters: 2, MaxGlobalIters: 20,
		RecordHistory: true, Seed: 31,
	}
	so := ShardOptions{Shards: 3, Sequential: true}
	var base Result
	for i, k := range dispatchKernels {
		res, err := SolveSharded(planForKernel(t, a, 50, k), b, opt, so)
		if err != nil {
			t.Fatalf("sharded (%v): %v", k, err)
		}
		if i == 0 {
			base = res
			continue
		}
		requireBitIdentical(t, res, base)
	}
}

// TestStencilPerturbedRowSolveMatchesCSR is the end-to-end half of the
// almost-a-stencil property: perturbing one interior coefficient demotes
// that row to the CSR fallback, and the whole solve must stay bit-identical
// to the pure-CSR plan — the demotion is provably lossless.
func TestStencilPerturbedRowSolveMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		w := 8 + rng.Intn(10)
		h := 8 + rng.Intn(10)
		a := mats.Poisson2D(w, h)
		row := (1+rng.Intn(h-2))*w + 1 + rng.Intn(w-2) // an interior row
		p := a.RowPtr[row] + rng.Intn(a.RowPtr[row+1]-a.RowPtr[row])
		a.Val[p] += 0.5 + rng.Float64()

		sp, err := NewPlanWithConfig(a, 64, false, PlanConfig{Kernel: KernelStencil})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sp.StencilInfo().Interior[row] {
			t.Fatalf("trial %d: perturbed row %d not demoted", trial, row)
		}
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		opt := Options{
			BlockSize: 64, LocalIters: 3, MaxGlobalIters: 25,
			RecordHistory: true, Seed: int64(100 + trial), StaleProb: 0.2,
		}
		sres, err := SolveWithPlan(sp, b, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cres, err := SolveWithPlan(planForKernel(t, a, 64, KernelCSR), b, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		requireBitIdentical(t, sres, cres)
	}
}
