package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mats"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

func onesRHS(a *sparse.CSR) []float64 {
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	return b
}

func defaultOpts() Options {
	return Options{
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 800,
		Tolerance:      1e-10,
		Seed:           1,
	}
}

func checkSolvesOnes(t *testing.T, label string, x []float64, tol float64) {
	t.Helper()
	for i, v := range x {
		if math.Abs(v-1) > tol {
			t.Fatalf("%s: x[%d] = %g, want 1 (±%g)", label, i, v, tol)
		}
	}
}

func TestSimulatedSolvesPoisson(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	res, err := Solve(a, b, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g after %d iterations", res.Residual, res.GlobalIterations)
	}
	checkSolvesOnes(t, "simulated", res.X, 1e-8)
}

func TestGoroutineSolvesPoisson(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.Engine = EngineGoroutine
	res, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residual %g after %d iterations", res.Residual, res.GlobalIterations)
	}
	checkSolvesOnes(t, "goroutine", res.X, 1e-8)
}

func TestSimulatedDeterministicPerSeed(t *testing.T) {
	a := mats.Poisson2D(15, 15)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.MaxGlobalIters = 30
	opt.Tolerance = 0
	opt.RecordHistory = true
	// More blocks than the wave width, so the scheduling order influences
	// which blocks share a dispatch wave (otherwise every block reads the
	// same snapshot and all seeds coincide).
	opt.BlockSize = 16
	opt.Workers = 4
	r1, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.History {
		if r1.History[i] != r2.History[i] {
			t.Fatalf("same seed produced different residual at iteration %d: %g vs %g",
				i, r1.History[i], r2.History[i])
		}
	}
	opt.Seed = 99
	r3, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.History {
		if r1.History[i] != r3.History[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical histories (chaos not seeded?)")
	}
}

func TestAsyncConvergesOnAllConvergentPaperMatrices(t *testing.T) {
	// Paper Figures 6/7: every system except s1rmt3m1 converges.
	for _, name := range []string{"Chem97ZtZ", "fv1", "Trefethen_2000"} {
		a := mats.MustGenerate(name).A
		b := onesRHS(a)
		opt := defaultOpts()
		opt.BlockSize = 448 // the paper's production block size
		opt.MaxGlobalIters = 400
		opt.Tolerance = 1e-8 * vecmath.Nrm2(b)
		res, err := Solve(a, b, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Errorf("%s: not converged after %d iterations (residual %g)",
				name, res.GlobalIterations, res.Residual)
		}
	}
}

func TestAsyncDivergesOnS1RMT3M1(t *testing.T) {
	// Paper Figure 7e: ρ(B) ≈ 2.65 > 1 — block-asynchronous iteration is
	// not suitable for this system.
	a := mats.S1RMT3M1(400)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.Tolerance = 0
	opt.MaxGlobalIters = 200
	opt.RecordHistory = true
	res, err := Solve(a, b, opt)
	if err == nil {
		last := res.History[len(res.History)-1]
		if last < res.History[0] {
			t.Errorf("expected divergence, residual went %g -> %g", res.History[0], last)
		}
	} else if !errors.Is(err, ErrDiverged) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAsync5ConvergesFasterPerIterationThanAsync1(t *testing.T) {
	// Paper §4.3: extra local iterations accelerate convergence per global
	// iteration when the off-block mass is small (fv-type systems).
	a := mats.FV(40, 40, 1.368)
	b := onesRHS(a)
	run := func(k int) int {
		opt := defaultOpts()
		opt.LocalIters = k
		opt.BlockSize = 160 // 4 grid lines per block: strong in-block coupling
		opt.MaxGlobalIters = 2000
		opt.Tolerance = 1e-8
		res, err := Solve(a, b, opt)
		if err != nil || !res.Converged {
			t.Fatalf("async-(%d) failed: %v %+v", k, err, res.Converged)
		}
		return res.GlobalIterations
	}
	i1, i5 := run(1), run(5)
	if i5 >= i1 {
		t.Errorf("async-(5) took %d global iterations, async-(1) %d; local sweeps must help", i5, i1)
	}
	ratio := float64(i1) / float64(i5)
	if ratio < 1.5 {
		t.Errorf("improvement factor %.2f, paper observes up to ~4 on fv systems", ratio)
	}
}

func TestChem97LocalItersUseless(t *testing.T) {
	// Paper §4.3: Chem97ZtZ's local blocks are diagonal, so local
	// iterations cannot help — async-(5) behaves like async-(1).
	a := mats.Chem97ZtZ(600)
	b := onesRHS(a)
	run := func(k int) int {
		opt := defaultOpts()
		opt.LocalIters = k
		opt.BlockSize = 128
		opt.MaxGlobalIters = 2000
		opt.Tolerance = 1e-8
		res, err := Solve(a, b, opt)
		if err != nil || !res.Converged {
			t.Fatalf("async-(%d) failed: %v", k, err)
		}
		return res.GlobalIterations
	}
	i1, i5 := run(1), run(5)
	// Identical within a couple of iterations (chaos may shift one).
	if d := i1 - i5; d < -3 || d > 3 {
		t.Errorf("async-(1) %d vs async-(5) %d iterations; should be nearly equal on diagonal local blocks", i1, i5)
	}
}

func TestAsyncBeatsGaussSeidelPerIterationOnFV(t *testing.T) {
	// Paper Figure 7b/7c/7d: async-(5) converges roughly twice as fast as
	// Gauss-Seidel per (global) iteration on the fv systems.
	a := mats.FV(40, 40, 1.368)
	b := onesRHS(a)
	tol := 1e-8
	gs, err := solver.GaussSeidel(a, b, solver.Options{MaxIterations: 2000, Tolerance: tol})
	if err != nil || !gs.Converged {
		t.Fatalf("GS failed: %v", err)
	}
	opt := defaultOpts()
	opt.BlockSize = 160
	opt.MaxGlobalIters = 2000
	opt.Tolerance = tol
	res, err := Solve(a, b, opt)
	if err != nil || !res.Converged {
		t.Fatalf("async-(5) failed: %v", err)
	}
	if res.GlobalIterations >= gs.Iterations {
		t.Errorf("async-(5) %d global iterations vs GS %d; paper shows ≈2× fewer",
			res.GlobalIterations, gs.Iterations)
	}
}

func TestGoroutineRunsVary(t *testing.T) {
	// Paper §4.1: asynchronous runs are non-deterministic. With real
	// concurrency the interleavings — and final residuals — vary between
	// runs. (In principle two runs could tie; 10 identical runs would mean
	// the engine is not actually asynchronous.)
	a := mats.Trefethen(600)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.Engine = EngineGoroutine
	opt.BlockSize = 32
	opt.MaxGlobalIters = 12
	opt.Tolerance = 0
	opt.RecordHistory = true
	first, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for trial := 0; trial < 9 && !varied; trial++ {
		r, err := Solve(a, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r.History {
			if r.History[i] != first.History[i] {
				varied = true
				break
			}
		}
	}
	if !varied {
		t.Skip("all goroutine runs identical on this machine (single-core?); skipping")
	}
}

func TestTraceValidatesChazanMiranker(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.RecordTrace = true
	opt.MaxGlobalIters = 25
	opt.Tolerance = 0
	opt.StaleProb = 0.5
	res, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace recorded")
	}
	// Condition (1): every block updated every iteration.
	if err := res.Trace.Validate(1); err != nil {
		t.Errorf("Chazan–Miranker validation failed: %v", err)
	}
	for b, c := range res.Trace.UpdatesPerBlock {
		if c != 25 {
			t.Errorf("block %d updated %d times, want 25", b, c)
		}
	}
	// Condition (2): without faults the shift never exceeds one global
	// iteration in the simulated engine.
	if res.Trace.MaxShift > 1 {
		t.Errorf("MaxShift = %d, want ≤1 without faults", res.Trace.MaxShift)
	}
	if res.Trace.TotalReads == 0 {
		t.Error("trace recorded no reads")
	}
	if f := res.Trace.StaleFraction(); f <= 0 || f >= 1 {
		t.Errorf("stale fraction %g, want in (0,1) for StaleProb=0.5", f)
	}
}

func TestTraceDetectsUnfairness(t *testing.T) {
	tr := &Trace{UpdatesPerBlock: []int{10, 3}, GlobalIterations: 10, MaxShift: 1}
	if err := tr.Validate(-1); err == nil {
		t.Error("expected fairness violation")
	}
	tr2 := &Trace{UpdatesPerBlock: []int{10, 10}, GlobalIterations: 10, MaxShift: 7}
	if err := tr2.Validate(3); err == nil {
		t.Error("expected shift-bound violation")
	}
	if err := tr2.Validate(-1); err != nil {
		t.Errorf("unbounded validation should pass: %v", err)
	}
	empty := &Trace{}
	if err := empty.Validate(-1); err == nil {
		t.Error("expected error for empty trace")
	}
}

func TestSkipBlockHook(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.MaxGlobalIters = 40
	opt.Tolerance = 0
	opt.RecordTrace = true
	dead := 2
	opt.SkipBlock = func(iter, block int) bool { return block == dead }
	res, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.UpdatesPerBlock[dead] != 0 {
		t.Errorf("dead block updated %d times", res.Trace.UpdatesPerBlock[dead])
	}
	if res.Trace.SkippedUpdates != 40 {
		t.Errorf("SkippedUpdates = %d, want 40", res.Trace.SkippedUpdates)
	}
	// The dead block's components retain the initial guess (zero), so the
	// residual cannot reach the no-failure level (paper Figure 10, "no
	// recovery" curve).
	lo, hi := sparse.NewBlockPartition(a.Rows, opt.BlockSize).Bounds(dead)
	for i := lo; i < hi; i++ {
		if res.X[i] != 0 {
			t.Errorf("dead block component %d changed to %g", i, res.X[i])
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	a := mats.Poisson2D(4, 4)
	b := onesRHS(a)
	bad := []Options{
		{BlockSize: 0, LocalIters: 1, MaxGlobalIters: 1},
		{BlockSize: 4, LocalIters: 0, MaxGlobalIters: 1},
		{BlockSize: 4, LocalIters: 1, MaxGlobalIters: 0},
		{BlockSize: 4, LocalIters: 1, MaxGlobalIters: 1, Recurrence: 2},
		{BlockSize: 4, LocalIters: 1, MaxGlobalIters: 1, StaleProb: -0.5},
		{BlockSize: 4, LocalIters: 1, MaxGlobalIters: 1, Workers: -1},
		{BlockSize: 4, LocalIters: 1, MaxGlobalIters: 1, InitialGuess: make([]float64, 3)},
	}
	for i, o := range bad {
		if _, err := Solve(a, b, o); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := Solve(a, b[:3], Options{BlockSize: 4, LocalIters: 1, MaxGlobalIters: 1}); err == nil {
		t.Error("expected rhs length error")
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineSimulated.String() != "simulated" || EngineGoroutine.String() != "goroutine" {
		t.Error("EngineKind.String broken")
	}
	if EngineKind(42).String() == "" {
		t.Error("unknown engine must stringify")
	}
}

func TestBlockSizeLargerThanMatrix(t *testing.T) {
	// One block covering the whole system: async-(k) degenerates to k
	// synchronous Jacobi sweeps per global iteration.
	a := mats.Poisson2D(8, 8)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.BlockSize = 10_000
	opt.LocalIters = 1
	opt.MaxGlobalIters = 200
	opt.Tolerance = 0
	opt.RecordHistory = true
	res, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	j, err := solver.Jacobi(a, b, solver.Options{MaxIterations: 200, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.History {
		if math.Abs(res.History[i]-j.History[i]) > 1e-9*(1+j.History[i]) {
			t.Fatalf("single-block async-(1) differs from Jacobi at iteration %d: %g vs %g",
				i, res.History[i], j.History[i])
		}
	}
}

func TestInitialGuessNotMutated(t *testing.T) {
	a := mats.Poisson2D(8, 8)
	b := onesRHS(a)
	guess := vecmath.Ones(a.Rows)
	opt := defaultOpts()
	opt.InitialGuess = guess
	opt.MaxGlobalIters = 3
	opt.Tolerance = 1e-12
	if _, err := Solve(a, b, opt); err != nil {
		t.Fatal(err)
	}
	for _, v := range guess {
		if v != 1 {
			t.Fatal("initial guess mutated")
		}
	}
}

func TestFreeRunningSolves(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	res, err := SolveFreeRunning(a, b, FreeRunningOptions{
		BlockSize:       50,
		LocalIters:      3,
		MaxBlockUpdates: 1_000_000,
		Tolerance:       1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("free-running not converged: residual %g after %d updates", res.Residual, res.BlockUpdates)
	}
	checkSolvesOnes(t, "freerun", res.X, 1e-6)
	if res.EquivalentGlobalIters <= 0 {
		t.Error("EquivalentGlobalIters not computed")
	}
}

func TestFreeRunningBudgetExhaustion(t *testing.T) {
	a := mats.Poisson2D(20, 20)
	b := onesRHS(a)
	res, err := SolveFreeRunning(a, b, FreeRunningOptions{
		BlockSize:       50,
		LocalIters:      1,
		MaxBlockUpdates: 8, // one sweep's worth: cannot converge
		Tolerance:       1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("cannot converge within 8 block updates")
	}
	if res.BlockUpdates > 8 {
		t.Errorf("budget exceeded: %d updates", res.BlockUpdates)
	}
}

func TestFreeRunningValidation(t *testing.T) {
	a := mats.Poisson2D(4, 4)
	b := onesRHS(a)
	bad := []FreeRunningOptions{
		{BlockSize: 0, LocalIters: 1, MaxBlockUpdates: 1, Tolerance: 1},
		{BlockSize: 4, LocalIters: 1, MaxBlockUpdates: 0, Tolerance: 1},
		{BlockSize: 4, LocalIters: 1, MaxBlockUpdates: 1, Tolerance: 0},
		{BlockSize: 4, LocalIters: 1, MaxBlockUpdates: 1, Tolerance: 1, InitialGuess: make([]float64, 2)},
	}
	for i, o := range bad {
		if _, err := SolveFreeRunning(a, b, o); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAtomicVector(t *testing.T) {
	v := NewAtomicVector([]float64{1, 2, 3})
	if v.Len() != 3 || v.Load(1) != 2 {
		t.Fatal("basic load broken")
	}
	v.Store(1, -7.5)
	if v.Load(1) != -7.5 {
		t.Fatal("store broken")
	}
	s := v.Snapshot()
	if s[0] != 1 || s[1] != -7.5 || s[2] != 3 {
		t.Fatalf("snapshot = %v", s)
	}
	dst := make([]float64, 3)
	v.CopyInto(dst)
	if dst[1] != -7.5 {
		t.Fatal("CopyInto broken")
	}
	v.SetAll([]float64{9, 9, 9})
	if v.Load(2) != 9 {
		t.Fatal("SetAll broken")
	}
}

func TestAtomicVectorPanics(t *testing.T) {
	v := NewAtomicVector(make([]float64, 2))
	for _, f := range []func(){
		func() { v.CopyInto(make([]float64, 3)) },
		func() { v.SetAll(make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: for diagonally dominant systems, both engines converge to the
// true solution for arbitrary block sizes and local iteration counts.
func TestPropertyAsyncConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed int64, bs8, k8 uint8, gor bool) bool {
		n := 60
		a := mats.DiagDominant(n, 2, 1.6)
		b := onesRHS(a)
		opt := Options{
			BlockSize:      int(bs8%40) + 3,
			LocalIters:     int(k8%6) + 1,
			MaxGlobalIters: 3000,
			Tolerance:      1e-9,
			Seed:           seed,
		}
		if gor {
			opt.Engine = EngineGoroutine
		}
		res, err := Solve(a, b, opt)
		if err != nil || !res.Converged {
			return false
		}
		for _, v := range res.X {
			if math.Abs(v-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOmegaValidation(t *testing.T) {
	a := mats.Poisson2D(4, 4)
	b := onesRHS(a)
	for _, w := range []float64{-0.5, 2.0, 2.5} {
		opt := defaultOpts()
		opt.Omega = w
		if _, err := Solve(a, b, opt); err == nil {
			t.Errorf("Omega=%g accepted", w)
		}
	}
}

func TestScaledAsyncRescuesS1RMT3M1(t *testing.T) {
	// The paper's §4.2 τ-scaling remark, applied to the *asynchronous*
	// method: with ω = τ = 2/(λ1+λn) of D⁻¹A, block-asynchronous iteration
	// converges on the SPD system whose plain iteration matrix has
	// ρ(B) ≈ 2.66 > 1 (and on which async-(k) otherwise diverges).
	a := mats.S1RMT3M1(400)
	b := onesRHS(a)

	plain := defaultOpts()
	plain.Tolerance = 0
	plain.MaxGlobalIters = 100
	plain.RecordHistory = true
	pres, perr := Solve(a, b, plain)
	if perr == nil {
		last := pres.History[len(pres.History)-1]
		if last < pres.History[0] {
			t.Fatal("plain async unexpectedly converged on s1rmt3m1")
		}
	}

	scaled := plain
	scaled.Omega = 0.546 // ≈ 2/(256/70), the analytic τ for the 8th-difference stencil
	scaled.MaxGlobalIters = 400
	sres, err := Solve(a, b, scaled)
	if err != nil {
		t.Fatal(err)
	}
	first, last := sres.History[0], sres.History[len(sres.History)-1]
	if !(last < first*1e-2) {
		t.Errorf("τ-scaled async should converge: residual %g -> %g", first, last)
	}
}

func TestOmegaDampedMatchesScaledJacobiSingleBlock(t *testing.T) {
	// One block + one local sweep + ω reduces exactly to the damped Jacobi
	// iteration of the solver package.
	a := mats.Poisson2D(8, 8)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.BlockSize = 10_000
	opt.LocalIters = 1
	opt.Omega = 0.7
	opt.MaxGlobalIters = 60
	opt.Tolerance = 0
	opt.RecordHistory = true
	res, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := solver.ScaledJacobi(a, b, 0.7, solver.Options{MaxIterations: 60, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.History {
		if math.Abs(res.History[i]-sj.History[i]) > 1e-9*(1+sj.History[i]) {
			t.Fatalf("iteration %d: async/ω %g vs scaled Jacobi %g", i, res.History[i], sj.History[i])
		}
	}
}

func TestTraceShiftHistogram(t *testing.T) {
	a := mats.Poisson2D(16, 16)
	b := onesRHS(a)
	opt := defaultOpts()
	opt.RecordTrace = true
	opt.MaxGlobalIters = 20
	opt.Tolerance = 0
	res, err := Solve(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if len(tr.ShiftCounts) == 0 {
		t.Fatal("no shift histogram recorded")
	}
	var sum int64
	for s, c := range tr.ShiftCounts {
		if s < 0 || s > tr.MaxShift {
			t.Errorf("histogram shift %d outside [0, MaxShift=%d]", s, tr.MaxShift)
		}
		sum += c
	}
	if sum != tr.TotalReads {
		t.Errorf("histogram mass %d != TotalReads %d", sum, tr.TotalReads)
	}
	mean := tr.MeanShift()
	if mean <= 0 || mean > float64(tr.MaxShift) {
		t.Errorf("MeanShift = %g outside (0, %d]", mean, tr.MaxShift)
	}
}
