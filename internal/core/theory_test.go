package core

import (
	"math"
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
	"repro/internal/spectral"
)

// The two-stage iteration theory checks: with b = 0 the solver's global
// iteration is exactly the linear error-propagation operator E (x ↦ E·x),
// so spectral.OperatorRadius can measure ρ(E) — which must govern the
// measured convergence rate and match closed forms in degenerate cases.
//
// StaleProb = 1 makes every block read the iteration-start snapshot, so
// the operator is schedule-independent (pure block Jacobi) and exactly
// reproducible; recurrence/seed then do not matter.

// matCSR aliases the matrix type for the helper signature below.
type matCSR = sparse.CSR

func TestTheorySingleBlockAsync1EqualsJacobi(t *testing.T) {
	// One block, one local sweep: E = B = I − D⁻¹A, so ρ(E) = ρ(B).
	a := mats.Poisson2D(12, 12)
	opt := Options{BlockSize: 1 << 20, LocalIters: 1, MaxGlobalIters: 1, StaleProb: 1, Seed: 1}
	apply := operatorFor(t, a, opt)
	r, err := spectral.OperatorRadius(apply, a.Rows, 4000, 1e-9, 2)
	if err != nil {
		t.Logf("note: %v", err)
	}
	want, err := spectral.JacobiSpectralRadius(a, 3)
	if err != nil {
		t.Logf("note: %v", err)
	}
	if math.Abs(r.Radius-want) > 1e-4 {
		t.Errorf("ρ(E) = %.6f, want ρ(B) = %.6f", r.Radius, want)
	}
}

func TestTheorySingleBlockAsyncKEqualsJacobiPower(t *testing.T) {
	// One block, k local sweeps: E = B^k, so ρ(E) = ρ(B)^k.
	a := mats.Poisson2D(10, 10)
	k := 4
	opt := Options{BlockSize: 1 << 20, LocalIters: k, MaxGlobalIters: 1, StaleProb: 1, Seed: 1}
	apply := operatorFor(t, a, opt)
	r, err := spectral.OperatorRadius(apply, a.Rows, 4000, 1e-9, 2)
	if err != nil {
		t.Logf("note: %v", err)
	}
	rho, err := spectral.JacobiSpectralRadius(a, 3)
	if err != nil {
		t.Logf("note: %v", err)
	}
	want := math.Pow(rho, float64(k))
	if math.Abs(r.Radius-want) > 1e-4 {
		t.Errorf("ρ(E) = %.6f, want ρ(B)^%d = %.6f", r.Radius, k, want)
	}
}

func TestTheoryBlockOperatorBetweenJacobiBounds(t *testing.T) {
	// Blocked async-(k) with frozen off-block values: contraction at least
	// as strong as one Jacobi sweep, at most as strong as k sweeps.
	a := mats.FV(20, 20, 1.368)
	k := 5
	opt := Options{BlockSize: 80, LocalIters: k, MaxGlobalIters: 1, StaleProb: 1, Seed: 1}
	apply := operatorFor(t, a, opt)
	r, err := spectral.OperatorRadius(apply, a.Rows, 4000, 1e-9, 2)
	if err != nil {
		t.Logf("note: %v", err)
	}
	rho, err := spectral.JacobiSpectralRadius(a, 3)
	if err != nil {
		t.Logf("note: %v", err)
	}
	if !(r.Radius <= rho+1e-6) {
		t.Errorf("block operator ρ(E) = %.4f must not exceed the one-sweep Jacobi rate %.4f", r.Radius, rho)
	}
	if !(r.Radius >= math.Pow(rho, float64(k))-1e-6) {
		t.Errorf("block operator ρ(E) = %.4f cannot beat %d full Jacobi sweeps (%.4f)",
			r.Radius, k, math.Pow(rho, float64(k)))
	}
}

func TestTheoryOperatorRadiusPredictsMeasuredRate(t *testing.T) {
	// The asymptotic convergence rate of the actual solve must match the
	// probed ρ(E).
	a := mats.FV(20, 20, 1.368)
	opt := Options{BlockSize: 80, LocalIters: 5, MaxGlobalIters: 1, StaleProb: 1, Seed: 1}
	apply := operatorFor(t, a, opt)
	r, err := spectral.OperatorRadius(apply, a.Rows, 4000, 1e-9, 2)
	if err != nil {
		t.Logf("note: %v", err)
	}

	b := onesRHS(a)
	solveOpt := opt
	solveOpt.MaxGlobalIters = 60
	solveOpt.RecordHistory = true
	res, err := Solve(a, b, solveOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Asymptotic rate over the last stretch above the round-off floor.
	h := res.History
	lo, hi := 20, 45
	measured := math.Pow(h[hi]/h[lo], 1/float64(hi-lo))
	if math.Abs(measured-r.Radius) > 0.05 {
		t.Errorf("measured rate %.4f vs probed ρ(E) %.4f", measured, r.Radius)
	}
}

// operatorFor builds the E-application without the csrAlias indirection.
func operatorFor(t *testing.T, a *matCSR, opt Options) func(dst, src []float64) {
	t.Helper()
	zero := make([]float64, a.Rows)
	return func(dst, src []float64) {
		o := opt
		o.InitialGuess = src
		res, err := Solve(a, zero, o)
		if err != nil {
			t.Fatalf("operator application: %v", err)
		}
		copy(dst, res.X)
	}
}
