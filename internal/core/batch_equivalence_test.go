package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mats"
	"repro/internal/sched"
)

// batchRHS builds N distinct right-hand sides for one structure.
func batchRHS(n, count int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rhs := make([][]float64, count)
	for j := range rhs {
		b := make([]float64, n)
		for i := range b {
			b[i] = 1 + rng.Float64()
		}
		rhs[j] = b
	}
	return rhs
}

// TestBatchEquivalentToPerSystemSolves is the batch conformance anchor:
// at Workers=1 the batched run must be bitwise identical to the loop a
// caller would write by hand — one SolveWithPlan per system at goroutine
// Workers=1, seeded with the system's BatchSeed. (The batch executor runs
// each system down the sharded substrate's sequential one-shard path,
// whose bit-identity to the one-worker goroutine engine is the substrate's
// own anchor property; this test closes the loop across the batch layer.)
func TestBatchEquivalentToPerSystemSolves(t *testing.T) {
	a := mats.Trefethen(200)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	const base = int64(42)
	opt := Options{
		BlockSize:      25,
		LocalIters:     3,
		MaxGlobalIters: 300,
		Tolerance:      1e-9,
		Seed:           base,
	}
	rhs := batchRHS(a.Rows, 7, 3)

	got, err := SolveBatch(p, rhs, opt, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Converged != len(rhs) || got.Failed != 0 {
		t.Fatalf("batch: %d converged, %d failed of %d", got.Converged, got.Failed, len(rhs))
	}
	for j := range rhs {
		so := opt
		so.Engine = EngineGoroutine
		so.Workers = 1
		so.Seed = BatchSeed(base, j)
		want, err := SolveWithPlan(p, rhs[j], so)
		if err != nil {
			t.Fatalf("per-system solve %d: %v", j, err)
		}
		sys := got.Systems[j]
		if sys.GlobalIterations != want.GlobalIterations {
			t.Fatalf("system %d: batch took %d iterations, standalone %d",
				j, sys.GlobalIterations, want.GlobalIterations)
		}
		if sys.Residual != want.Residual {
			t.Fatalf("system %d: batch residual %v, standalone %v", j, sys.Residual, want.Residual)
		}
		for i := range want.X {
			if sys.X[i] != want.X[i] {
				t.Fatalf("system %d: X[%d] = %v, want bit-identical %v", j, i, sys.X[i], want.X[i])
			}
		}
	}
}

// TestBatchConcurrentMatchesSequential: every system's execution is
// deterministic in its derived seed regardless of which worker runs it,
// so a Workers=4 batch must reproduce the Workers=1 batch bit for bit.
// Under -race this doubles as the batch executor's data-race stress.
func TestBatchConcurrentMatchesSequential(t *testing.T) {
	a := mats.Poisson2D(12, 12)
	p, err := NewPlan(a, 24, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		BlockSize:      24,
		LocalIters:     2,
		MaxGlobalIters: 2000,
		Tolerance:      1e-8,
		Seed:           7,
	}
	rhs := batchRHS(a.Rows, 12, 5)

	seq, err := SolveBatch(p, rhs, opt, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveBatch(p, rhs, opt, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for j := range rhs {
		if par.Systems[j].GlobalIterations != seq.Systems[j].GlobalIterations {
			t.Fatalf("system %d: %d iterations concurrent, %d sequential",
				j, par.Systems[j].GlobalIterations, seq.Systems[j].GlobalIterations)
		}
		for i := range seq.Systems[j].X {
			if par.Systems[j].X[i] != seq.Systems[j].X[i] {
				t.Fatalf("system %d: X[%d] differs between Workers=4 and Workers=1", j, i)
			}
		}
	}
}

// TestBatchPartialFailure: one poisoned system (NaN in its RHS, detected
// as a diverged residual) must fail alone; its neighbours complete and
// converge, and the batch-level error stays nil.
func TestBatchPartialFailure(t *testing.T) {
	a := mats.Trefethen(150)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		BlockSize:      25,
		LocalIters:     2,
		MaxGlobalIters: 300,
		Tolerance:      1e-8,
		Seed:           9,
	}
	rhs := batchRHS(a.Rows, 5, 1)
	rhs[2][0] = math.NaN()

	res, err := SolveBatch(p, rhs, opt, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("batch-level error for a per-system failure: %v", err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Failed)
	}
	if res.Converged != 4 {
		t.Fatalf("Converged = %d, want 4", res.Converged)
	}
	if !errors.Is(res.Systems[2].Err, ErrDiverged) {
		t.Fatalf("system 2 error = %v, want ErrDiverged", res.Systems[2].Err)
	}
	for _, j := range []int{0, 1, 3, 4} {
		if res.Systems[j].Err != nil || !res.Systems[j].Converged {
			t.Fatalf("system %d: err=%v converged=%v, want clean convergence",
				j, res.Systems[j].Err, res.Systems[j].Converged)
		}
	}
}

// TestBatchIterateViews: the per-system X slices are views into the one
// contiguous backing array, not copies.
func TestBatchIterateViews(t *testing.T) {
	a := mats.Trefethen(100)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	rhs := batchRHS(a.Rows, 3, 2)
	res, err := SolveBatch(p, rhs, Options{
		BlockSize: 25, LocalIters: 2, MaxGlobalIters: 200, Tolerance: 1e-8, Seed: 3,
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	if len(res.Iterates) != 3*n {
		t.Fatalf("Iterates length %d, want %d", len(res.Iterates), 3*n)
	}
	for j, sys := range res.Systems {
		if &sys.X[0] != &res.Iterates[j*n] {
			t.Fatalf("system %d: X is not a view into Iterates", j)
		}
	}
}

// TestBatchCancellation: a context canceled mid-batch yields a batch-level
// ErrCanceled with the already-finished systems intact and the rest marked
// canceled per-system.
func TestBatchCancellation(t *testing.T) {
	a := mats.Trefethen(150)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	opt := Options{
		BlockSize: 25, LocalIters: 2, MaxGlobalIters: 400, Tolerance: 1e-10,
		Seed: 4, Ctx: ctx,
		AfterIteration: func(iter int, x VectorAccess) {
			if iter == 2 {
				cancel()
			}
		},
	}
	res, err := SolveBatch(p, batchRHS(a.Rows, 6, 7), opt, BatchOptions{Workers: 1})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("batch error = %v, want ErrCanceled", err)
	}
	canceled := 0
	for _, sys := range res.Systems {
		if errors.Is(sys.Err, ErrCanceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no system recorded the cancellation")
	}
}

// TestBatchValidation pins the structural error surface: zero systems,
// a mismatched RHS length, a caller InitialGuess, and schedule capture
// are all refused up front.
func TestBatchValidation(t *testing.T) {
	a := mats.Trefethen(100)
	p, err := NewPlan(a, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{BlockSize: 25, LocalIters: 2, MaxGlobalIters: 10, Seed: 1}
	good := batchRHS(a.Rows, 2, 1)

	if _, err := SolveBatch(p, nil, opt, BatchOptions{}); err == nil {
		t.Error("zero-system batch accepted")
	}
	short := [][]float64{good[0], make([]float64, a.Rows-1)}
	if _, err := SolveBatch(p, short, opt, BatchOptions{}); err == nil || !strings.Contains(err.Error(), "system 1") {
		t.Errorf("mismatched RHS length: err = %v, want a system-1 length error", err)
	}
	guess := opt
	guess.InitialGuess = make([]float64, a.Rows)
	if _, err := SolveBatch(p, good, guess, BatchOptions{}); err == nil {
		t.Error("InitialGuess accepted")
	}
	rec := opt
	rec.Record = sched.NewRecorder(0)
	if _, err := SolveBatch(p, good, rec, BatchOptions{}); err == nil {
		t.Error("Record accepted")
	}
	if _, err := SolveBatch(p, good, opt, BatchOptions{Workers: -1}); err == nil {
		t.Error("negative Workers accepted")
	}
}

// TestBatchSeedProperties: derived seeds are never zero (zero means
// "derive a fresh stream", which would break reproducibility) and distinct
// across a realistic batch width.
func TestBatchSeedProperties(t *testing.T) {
	seen := make(map[int64]int)
	for _, base := range []int64{1, 42, -7, math.MaxInt64} {
		for j := 0; j < 4096; j++ {
			s := BatchSeed(base, j)
			if s == 0 {
				t.Fatalf("BatchSeed(%d, %d) = 0", base, j)
			}
			seen[s]++
		}
	}
	for s, c := range seen {
		if c > 1 {
			t.Fatalf("seed %d derived %d times across bases/systems", s, c)
		}
	}
}
