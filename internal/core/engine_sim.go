package core

import (
	"math/rand"

	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// freshProb is the probability that an off-block read observes the current
// sweep's value of a component instead of the previous sweep's. On the
// modeled hardware most blocks of a kernel are resident concurrently, so
// same-sweep values are the exception; the value is calibrated so the
// run-to-run convergence variation matches the paper's §4.1 measurements
// (Trefethen_2000 ≈ 10–20% near convergence, fv1 a few percent at most).
const freshProb = 0.2

// solveSimulated runs the deterministic engine: blocks execute sequentially
// in the chaotic order produced by the seeded gpusim.Scheduler, and their
// off-block reads model the memory visibility of a GPU kernel sweep:
//
//   - most reads observe the previous sweep's value (the blocks of a
//     kernel are dispatched nearly simultaneously, so same-sweep values
//     are rarely visible);
//   - each component read independently races with its writer: with
//     probability freshProb the reader observes the current sweep's value
//     if the source block has already executed (the "block Gauss-Seidel
//     flavor" of paper §3.3). The per-component granularity matters: the
//     coin noise averages out within a block, so the surviving run-to-run
//     variation is driven by the *scheduling order* — which recurs across
//     iterations (gpusim.Scheduler) — and scales with the off-block
//     coupling mass, reproducing the paper's §4.1 contrast between fv1
//     and Trefethen_2000;
//   - StaleProb > 0 adds extra chaos: with that probability a block reads
//     the iteration-start snapshot outright (a maximally late dispatch).
//
// Everything is driven by opt.Seed, so runs are exactly reproducible.
func solveSimulated(p *Plan, b []float64, opt Options) (Result, error) {
	if opt.Replay != nil {
		return replaySimulated(p, b, opt)
	}
	a, sp, part, views := p.a, p.sp, p.part, p.views

	n := a.Rows
	x := make([]float64, n)
	if opt.InitialGuess != nil {
		copy(x, opt.InitialGuess)
	}
	roundIterate(opt.Precision, x)
	is := p.getIterScratch()
	defer p.putIterScratch(is)
	nb := part.NumBlocks()
	if opt.Record != nil {
		opt.Record.SetMeta(simMeta(opt, nb))
	}

	res := Result{NumBlocks: nb}
	if opt.RecordHistory {
		res.History = make([]float64, 0, opt.MaxGlobalIters)
	}
	var trace *Trace
	if opt.RecordTrace {
		trace = &Trace{UpdatesPerBlock: make([]int, nb), ShiftCounts: make(map[int]int64)}
		res.Trace = trace
	}
	// blockVersion[q] = index of the global iteration whose sweep last
	// wrote block q (0 = initial values). Used for shift accounting.
	blockVersion := make([]int, nb)

	scr := p.getKernelScratch()
	defer p.putKernelScratch(scr)
	kern := p.kernelFor(opt.referenceKernel)
	rule := newUpdateRule(opt.Method, opt.Omega, opt.Beta, opt.Precision, x, opt.MomentumGuess)
	rs := newResidualState(opt, p.factors != nil, is.resid)
	factors := p.factors
	em := opt.Metrics.engine("simulated")
	ws := newWaveScheduler(opt, em, nb, x, is)
	// Interface conversion hoisted out of the block loop: boxing a slice
	// into valueWriter allocates, and the loop is the hot path. Under f32
	// storage the writer additionally rounds every published component.
	writer := iterateWriter(opt.Precision, sliceWriter(x))

	for iter := 1; iter <= opt.MaxGlobalIters; iter++ {
		if err := ctxErr(opt.Ctx, iter-1); err != nil {
			res.X = x
			return res, err
		}
		order := ws.BeginIteration(iter)
		var delta2 float64
		for _, bi := range order {
			// Per-block cancellation check: a global iteration over many
			// blocks (Trefethen_2000 at small block sizes has hundreds) can
			// take arbitrarily long, so waiting for the iteration boundary
			// would make cancellation latency O(n/blockSize) sweeps.
			if err := ctxErr(opt.Ctx, iter-1); err != nil {
				res.X = x
				return res, err
			}
			if opt.SkipBlock != nil && opt.SkipBlock(iter, bi) {
				if trace != nil {
					trace.SkippedUpdates++
				}
				continue
			}
			offRead := ws.View(iter, bi)
			opt.Chaos.delay(em, iter, bi)
			if trace != nil {
				offRead = &countingReader{inner: offRead, trace: trace, stale: ws.stale[bi],
					iter: iter, blockVersion: blockVersion, part: part}
			}
			if factors != nil {
				if err := runBlockExact(a, b, &views[bi], factors.lu[bi], offRead, writer, scr); err != nil {
					res.X = x
					return res, err
				}
			} else {
				delta2 += kern(a, sp, b, &views[bi], opt.LocalIters, rule, offRead, offRead, writer, scr)
			}
			blockVersion[bi] = iter
			em.addBlockSweep()
			if opt.Record != nil {
				opt.Record.Append(simEvent(iter, bi, opt, ws.stale[bi]))
			}
			if trace != nil {
				trace.UpdatesPerBlock[bi]++
			}
		}
		em.addIteration()
		if trace != nil {
			trace.GlobalIterations = iter
		}
		if opt.AfterIteration != nil {
			opt.AfterIteration(iter, iterateAccess(opt.Precision, sliceAccess(x)))
		}
		if rs.skip(iter, opt.MaxGlobalIters, delta2) {
			res.GlobalIterations = iter
			continue
		}
		stop, err := checkResidual(a, b, x, opt, &res, iter, delta2, rs)
		if err != nil {
			res.X = x
			return res, err
		}
		if stop {
			break
		}
	}
	res.X = x
	res.Momentum = rule.prev
	if !opt.RecordHistory && opt.Tolerance == 0 {
		res.Residual = residualInto(is.resid, a, b, x)
	}
	return res, nil
}

// mixReader yields, per component, the current sweep's value (live) with
// probability freshProb and the previous sweep's value (snap) otherwise.
// In the sequential emulation the live vector holds a source block's new
// value only if that block has already executed this iteration, so early
// positions in the schedule naturally see less fresh data — the mechanism
// through which the (recurring) schedule shapes each run's trajectory.
type mixReader struct {
	live, snap []float64
	rng        *rand.Rand
}

func (m *mixReader) Load(j int) float64 {
	if m.rng.Float64() < freshProb {
		return m.live[j]
	}
	return m.snap[j]
}

// countingReader wraps a valueReader to record Chazan–Miranker shift
// statistics: for every off-block read it computes how many global
// iterations stale the observed value is.
type countingReader struct {
	inner        valueReader
	trace        *Trace
	stale        bool // read from the global-iteration-start snapshot
	iter         int
	blockVersion []int
	part         sparse.BlockPartition
}

func (c *countingReader) Load(j int) float64 {
	c.trace.TotalReads++
	src := c.part.BlockOf(j)
	ver := c.blockVersion[src]
	if c.stale {
		// Iteration-start snapshot: the value predates every write of this
		// iteration even if the source block has since been updated.
		if ver >= c.iter {
			ver = c.iter - 1
		}
		c.trace.StaleReads++
	}
	// Mixed reads may also predate a same-iteration write of the source
	// block; that is at most one global iteration of staleness, which the
	// blockVersion bookkeeping already bounds. Shift: a value written
	// during this iteration has shift 0; the previous sweep's value has
	// shift 1; the initial vector read at iteration k has shift k ≤ k,
	// satisfying the initial-step condition s(k,i) ≤ k.
	shift := c.iter - ver
	if shift > c.trace.MaxShift {
		c.trace.MaxShift = shift
	}
	if c.trace.ShiftCounts != nil {
		c.trace.ShiftCounts[shift]++
	}
	return c.inner.Load(j)
}

// residualInto computes ‖b−Ax‖₂ using r as scratch (len(b) elements).
func residualInto(r []float64, a *sparse.CSR, b, x []float64) float64 {
	a.MulVec(r, x)
	vecmath.Sub(r, b, r)
	return vecmath.Nrm2(r)
}

func residual(a *sparse.CSR, b, x []float64) float64 {
	return residualInto(make([]float64, len(b)), a, b, x)
}
