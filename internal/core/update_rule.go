package core

import (
	"fmt"
	"strings"

	"repro/internal/sched"
)

// RuleKind selects the update rule the block sweeps apply — the relaxation
// recurrence itself, orthogonal to the engine (who runs which block when)
// and the kernel (how a sweep walks the matrix). Every engine and every
// sweep kernel runs every rule; the rule is threaded through the kernels as
// one shared *updateRule value.
type RuleKind int

const (
	// RuleJacobi is the paper's first-order weighted Jacobi update,
	//
	//	x_{k+1} = x_k + ω D⁻¹ r_k
	//
	// — the default, and the rule every pre-seam capture and golden replay
	// was produced by. It is bit-identical to the pre-seam code path by
	// construction: with β = 0 the kernels take the literal Jacobi sweep
	// loop, no momentum arithmetic executes.
	RuleJacobi RuleKind = iota
	// RuleRichardson2 is the second-order (heavy-ball) asynchronous
	// Richardson update of Chow, Frommer & Szyld,
	//
	//	x_{k+1} = x_k + ω D⁻¹ r_k + β (x_k − x_{k−1})
	//
	// carrying a per-component momentum trail x_{k−1} across block
	// executions. With modest delays the momentum term accelerates the
	// asymptotic rate the way classical heavy-ball does for synchronous
	// Richardson; the bounded-delay cluster ring measures exactly how the
	// advantage decays as MaxDelay grows (see internal/cluster.DelaySweep).
	RuleRichardson2 RuleKind = iota
)

// String returns the rule name used in flags, requests and metrics.
func (r RuleKind) String() string {
	switch r {
	case RuleJacobi:
		return "jacobi"
	case RuleRichardson2:
		return "richardson2"
	}
	return fmt.Sprintf("RuleKind(%d)", int(r))
}

// ParseRule parses a rule name; the empty string means RuleJacobi.
func ParseRule(s string) (RuleKind, error) {
	switch strings.ToLower(s) {
	case "", "jacobi":
		return RuleJacobi, nil
	case "richardson2":
		return RuleRichardson2, nil
	}
	return RuleJacobi, fmt.Errorf(`core: unknown update rule %q (want "jacobi" or "richardson2")`, s)
}

// updateRule is the per-solve state of the update-rule seam, shared by every
// worker of the solve. The scalar fields are immutable after construction;
// prev — the momentum trail x_{k−1}, indexed like the iterate — is written
// only inside block executions, and each component belongs to exactly one
// block, so the engines' existing ordering (barriers between iterations,
// per-block exclusivity within one) is all the synchronization it needs.
//
// The momentum path gates on beta != 0, NOT on kind: adding a literal
// β·(x_k − x_{k−1}) term with β = 0 would flip −0.0 components to +0.0 and
// break the bitwise jacobi-equivalence contract, so a β = 0 rule of either
// kind runs the unmodified first-order sweep loop.
type updateRule struct {
	kind  RuleKind
	omega float64
	beta  float64
	// prev is the momentum trail; nil iff beta == 0 (no momentum state is
	// allocated or touched on the first-order path).
	prev []float64
	// f32 mirrors Options.Precision == PrecF32: the trail is stored rounded
	// through float32, consistent with the iterate storage.
	f32 bool
}

// newUpdateRule builds a solve's rule state. start is the solve's initial
// iterate, already rounded for the storage precision; guess, when non-nil,
// seeds the momentum trail instead (a Session warm restart carrying its
// trail across steps). With beta == 0 nothing is allocated.
func newUpdateRule(kind RuleKind, omega, beta float64, precision string, start, guess []float64) *updateRule {
	r := &updateRule{kind: kind, omega: omega, beta: beta, f32: precision == PrecF32}
	if beta != 0 {
		r.prev = make([]float64, len(start))
		if guess != nil {
			copy(r.prev, guess)
			roundIterate(precision, r.prev)
		} else {
			// First execution of every block then sees x_{k−1} = x_0, so
			// the momentum term vanishes on the first sweep — the standard
			// heavy-ball start.
			copy(r.prev, start)
		}
	}
	return r
}

// storeMomentum writes a block's sweep trail back into the shared prev
// vector, rounding through float32 under f32 storage so the trail stays at
// the iterate's storage precision.
func storeMomentum(dst, src []float64, f32 bool) {
	if f32 {
		for i, v := range src {
			dst[i] = float64(float32(v))
		}
		return
	}
	copy(dst, src)
}

// replayBeta resolves the momentum coefficient a replay applies. Captures
// taken since the update-rule seam record their method, so their β — zero
// included — is authoritative: replaying a jacobi capture under a
// richardson2 option must not invent momentum the original never had.
// Pre-seam captures have no method field and defer to the caller, exactly
// as Meta.Omega == 0 defers to Options.Omega.
func replayBeta(m sched.Meta, optBeta float64) float64 {
	if m.Method != "" {
		return m.Beta
	}
	return optBeta
}
