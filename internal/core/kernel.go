package core

import (
	"sort"

	"repro/internal/sparse"
)

// blockView caches, for every row of one block, the split of its CSR entry
// range into the in-block segment [inLo, inHi) and the off-block remainder.
// Column indices are sorted within rows, so the in-block entries form one
// contiguous segment.
type blockView struct {
	lo, hi int // row range [lo, hi)
	// inLo[r], inHi[r] bound the in-block entries of row lo+r in ColIdx/Val.
	inLo, inHi []int
	// nnzLocal counts in-block nonzeros, nnzOff the off-block ones.
	nnzLocal, nnzOff int
}

// memoryBytes estimates the resident size of the view (plan accounting).
func (v blockView) memoryBytes() int64 {
	const w = 8
	return 2*w*int64(len(v.inLo)) + 4*w // inLo+inHi plus the fixed fields
}

// buildBlockViews precomputes the views for every block of the partition.
func buildBlockViews(a *sparse.CSR, part sparse.BlockPartition) []blockView {
	views := make([]blockView, part.NumBlocks())
	for bi := range views {
		lo, hi := part.Bounds(bi)
		v := blockView{lo: lo, hi: hi, inLo: make([]int, hi-lo), inHi: make([]int, hi-lo)}
		for i := lo; i < hi; i++ {
			rs, re := a.RowPtr[i], a.RowPtr[i+1]
			cols := a.ColIdx[rs:re]
			s := rs + sort.SearchInts(cols, lo)
			e := rs + sort.SearchInts(cols, hi)
			v.inLo[i-lo], v.inHi[i-lo] = s, e
			v.nnzLocal += e - s
			v.nnzOff += (re - rs) - (e - s)
		}
		views[bi] = v
	}
	return views
}

// valueReader abstracts how a block kernel observes off-block components of
// the iterate: the simulated engine passes plain slices (live or snapshot),
// the goroutine engines pass the AtomicVector.
type valueReader interface {
	Load(i int) float64
}

// sliceReader adapts a plain []float64 to valueReader.
type sliceReader []float64

func (s sliceReader) Load(i int) float64 { return s[i] }

// valueWriter abstracts how the kernel publishes updated block components.
type valueWriter interface {
	Store(i int, v float64)
}

// sliceWriter adapts a plain []float64 to valueWriter.
type sliceWriter []float64

func (s sliceWriter) Store(i int, v float64) { s[i] = v }

// kernelScratch holds the per-worker buffers of runBlockKernel, sized for
// the largest block, so repeated kernel invocations do not allocate.
type kernelScratch struct {
	s, xloc, xnew []float64
}

func newKernelScratch(maxBlock int) *kernelScratch {
	return &kernelScratch{
		s:    make([]float64, maxBlock),
		xloc: make([]float64, maxBlock),
		xnew: make([]float64, maxBlock),
	}
}

// runBlockKernel executes one thread block of the paper's Algorithm 1,
// generalized with the relaxation weight ω:
//
//	read x from global memory                 (off-block via offRead,
//	                                           in-block starting values via locRead)
//	s_i := b_i − Σ_{j∉J} a_ij x_j             (off-block part, frozen)
//	repeat k times (synchronous weighted Jacobi on the subdomain):
//	    x_i := (1−ω)x_i + ω(s_i − Σ_{j∈J, j≠i} a_ij x_j) / a_ii
//	write the block's x values back           (via write)
//
// offRead and locRead may observe a live, concurrently-updated iterate —
// that is the asynchronous part; the kernel itself is oblivious to it.
func runBlockKernel(a *sparse.CSR, sp *sparse.Splitting, b []float64, v blockView,
	k int, omega float64, offRead, locRead valueReader, write valueWriter, scr *kernelScratch) {

	bs := v.hi - v.lo
	s := scr.s[:bs]
	xloc := scr.xloc[:bs]
	xnew := scr.xnew[:bs]

	// Off-block contribution, frozen for the local sweeps.
	for i := v.lo; i < v.hi; i++ {
		r := i - v.lo
		acc := b[i]
		for p := a.RowPtr[i]; p < v.inLo[r]; p++ {
			acc -= a.Val[p] * offRead.Load(a.ColIdx[p])
		}
		for p := v.inHi[r]; p < a.RowPtr[i+1]; p++ {
			acc -= a.Val[p] * offRead.Load(a.ColIdx[p])
		}
		s[r] = acc
		xloc[r] = locRead.Load(i)
	}

	// k synchronous Jacobi sweeps on the subdomain.
	for sweep := 0; sweep < k; sweep++ {
		for i := v.lo; i < v.hi; i++ {
			r := i - v.lo
			acc := s[r]
			for p := v.inLo[r]; p < v.inHi[r]; p++ {
				j := a.ColIdx[p]
				if j != i {
					acc -= a.Val[p] * xloc[j-v.lo]
				}
			}
			xnew[r] = (1-omega)*xloc[r] + omega*acc*sp.InvDiag[i]
		}
		xloc, xnew = xnew, xloc
	}

	// Publish the block's components to global memory.
	for i := v.lo; i < v.hi; i++ {
		write.Store(i, xloc[i-v.lo])
	}
}
