package core

import (
	"math"
	"sort"

	"repro/internal/sparse"
)

// blockView caches, for every row of one block, the split of its CSR entry
// range into the in-block segment [inLo, inHi) and the off-block remainder,
// plus — when staging is possible — a packed copy of the block's entries
// laid out the way the kernel consumes them (see buildBlockViews).
//
// The packed arrays are the host-side analogue of a GPU kernel staging its
// subdomain into shared memory (the mechanism behind the paper's §4.3
// "local iterations almost come for free"): the k local sweeps stream one
// contiguous (ptr, cols, vals) triple per block instead of picking strided
// sub-segments out of the global CSR arrays, the diagonal is excluded
// structurally (no per-entry branch in the innermost loop), and the column
// indices are pre-translated to block-local int32 offsets (half the index
// traffic of the global int columns).
type blockView struct {
	lo, hi int // row range [lo, hi)
	// inLo[r], inHi[r] bound the in-block entries of row lo+r in ColIdx/Val.
	inLo, inHi []int
	// nnzLocal counts in-block nonzeros, nnzOff the off-block ones.
	nnzLocal, nnzOff int

	// Packed off-block entries, per row in the exact order the reference
	// gather visits them (the entries before the in-block segment, then the
	// entries after it). offPtr[r]..offPtr[r+1] bound row lo+r.
	offPtr  []int32
	offCols []int32 // global column indices
	offVal  []float64
	// Packed in-block entries with the diagonal removed and columns
	// translated to block-local indices. locPtr[r]..locPtr[r+1] bound row
	// lo+r.
	locPtr  []int32
	locCols []int32 // block-local column indices
	locVal  []float64

	// sell holds the same local entries in sliced-ELLPACK layout; non-nil
	// only on plans built with KernelSELL (see kernel_dispatch.go).
	sell *sellBlock

	// stSpans lists the maximal runs of rows the stencil kernel's
	// branch-free fast loop covers (interior rows whose whole stencil span
	// lies inside the block); non-empty only on stencil plans. Precomputing
	// the runs moves every per-row class test out of the sweep loops (see
	// buildStencilSpans).
	stSpans []rowSpan
}

// memoryBytes estimates the resident size of the view (plan accounting).
func (v *blockView) memoryBytes() int64 {
	const w, w32 = 8, 4
	sz := 2*w*int64(len(v.inLo)) + 6*w // inLo+inHi plus the fixed fields
	sz += w32 * int64(len(v.offPtr)+len(v.offCols)+len(v.locPtr)+len(v.locCols))
	sz += w * int64(len(v.offVal)+len(v.locVal))
	if v.sell != nil {
		sz += v.sell.memoryBytes()
	}
	sz += w * int64(len(v.stSpans))
	return sz
}

// buildBlockViews precomputes the views for every block of the partition.
// staged reports whether the packed arrays were built; they are skipped
// only when a column index cannot be represented as an int32 (the packed
// layout would be unsound), in which case the engines fall back to the
// reference kernel.
func buildBlockViews(a *sparse.CSR, part sparse.BlockPartition) (views []blockView, staged bool) {
	staged = a.Cols <= math.MaxInt32
	views = make([]blockView, part.NumBlocks())
	for bi := range views {
		lo, hi := part.Bounds(bi)
		bs := hi - lo
		v := blockView{lo: lo, hi: hi, inLo: make([]int, bs), inHi: make([]int, bs)}
		for i := lo; i < hi; i++ {
			rs, re := a.RowPtr[i], a.RowPtr[i+1]
			cols := a.ColIdx[rs:re]
			s := rs + sort.SearchInts(cols, lo)
			e := rs + sort.SearchInts(cols, hi)
			v.inLo[i-lo], v.inHi[i-lo] = s, e
			v.nnzLocal += e - s
			v.nnzOff += (re - rs) - (e - s)
		}
		if staged {
			v.offPtr = make([]int32, bs+1)
			v.locPtr = make([]int32, bs+1)
			v.offCols = make([]int32, 0, v.nnzOff)
			v.offVal = make([]float64, 0, v.nnzOff)
			v.locCols = make([]int32, 0, v.nnzLocal)
			v.locVal = make([]float64, 0, v.nnzLocal)
			for i := lo; i < hi; i++ {
				r := i - lo
				for p := a.RowPtr[i]; p < v.inLo[r]; p++ {
					v.offCols = append(v.offCols, int32(a.ColIdx[p]))
					v.offVal = append(v.offVal, a.Val[p])
				}
				for p := v.inHi[r]; p < a.RowPtr[i+1]; p++ {
					v.offCols = append(v.offCols, int32(a.ColIdx[p]))
					v.offVal = append(v.offVal, a.Val[p])
				}
				v.offPtr[r+1] = int32(len(v.offCols))
				for p := v.inLo[r]; p < v.inHi[r]; p++ {
					if j := a.ColIdx[p]; j != i {
						v.locCols = append(v.locCols, int32(j-lo))
						v.locVal = append(v.locVal, a.Val[p])
					}
				}
				v.locPtr[r+1] = int32(len(v.locCols))
			}
		}
		views[bi] = v
	}
	return views, staged
}

// valueReader is the kernels' historical name for the substrate's
// IterateView: how a block kernel observes off-block components of the
// iterate. The simulated engine passes plain slices (live or snapshot), the
// goroutine engines pass the AtomicVector, the sharded executor composed
// shard views.
type valueReader = IterateView

// sliceReader adapts a plain []float64 to valueReader.
type sliceReader []float64

func (s sliceReader) Load(i int) float64 { return s[i] }

// valueWriter abstracts how the kernel publishes updated block components.
type valueWriter interface {
	Store(i int, v float64)
}

// sliceWriter adapts a plain []float64 to valueWriter.
type sliceWriter []float64

func (s sliceWriter) Store(i int, v float64) { s[i] = v }

// kernelScratch holds the per-worker buffers of the block kernels, sized
// for the largest block, so repeated kernel invocations do not allocate.
// Plans hold a pool of these (see Plan.getScratch) so steady-state solves
// reuse warm buffers instead of allocating per solve.
type kernelScratch struct {
	s, xloc, xnew, x0 []float64
	// xprev holds the momentum trail x_{k−1} during a momentum-rule block
	// execution; unused (but kept warm in the pool) on the first-order path.
	xprev []float64
}

func newKernelScratch(maxBlock int) *kernelScratch {
	return &kernelScratch{
		s:     make([]float64, maxBlock),
		xloc:  make([]float64, maxBlock),
		xnew:  make([]float64, maxBlock),
		x0:    make([]float64, maxBlock),
		xprev: make([]float64, maxBlock),
	}
}

// kernelFunc is the signature shared by all block-sweep kernels. rule is
// the solve's update rule (relaxation weight, momentum state); the kernels
// read its scalars and, on the momentum path, its shared prev trail — each
// block touching only its own components. The return value is the squared
// l2 norm of the block's iterate update, ‖x_J^new − x_J^old‖₂² — computed
// nearly for free in the publish loop and consumed by the incremental
// residual estimate (Options.ResidualEvery).
type kernelFunc func(a *sparse.CSR, sp *sparse.Splitting, b []float64, v *blockView,
	k int, rule *updateRule, offRead, locRead valueReader, write valueWriter, scr *kernelScratch) float64

// runBlockKernel executes one thread block of the paper's Algorithm 1,
// generalized with the relaxation weight ω:
//
//	read x from global memory                 (off-block via offRead,
//	                                           in-block starting values via locRead)
//	s_i := b_i − Σ_{j∉J} a_ij x_j             (off-block part, frozen)
//	repeat k times (synchronous weighted Jacobi on the subdomain):
//	    x_i := (1−ω)x_i + ω(s_i − Σ_{j∈J, j≠i} a_ij x_j) / a_ii
//	write the block's x values back           (via write)
//
// This is the fused hot path: both the gather and the sweeps stream the
// block's packed sub-CSR arrays (blockView staging), so each local sweep
// walks the block's rows once through contiguous memory with no diagonal
// branch and no per-entry index translation. Its floating-point operation
// order and its valueReader.Load call order are exactly those of
// runBlockKernelReference, so the two produce bit-identical iterates (and
// identical RNG consumption in the simulated engine's racing reader) —
// property-tested in kernel_fused_test.go.
//
// offRead and locRead may observe a live, concurrently-updated iterate —
// that is the asynchronous part; the kernel itself is oblivious to it.
func runBlockKernel(a *sparse.CSR, sp *sparse.Splitting, b []float64, v *blockView,
	k int, rule *updateRule, offRead, locRead valueReader, write valueWriter, scr *kernelScratch) float64 {

	omega := rule.omega
	bs := v.hi - v.lo
	s := scr.s[:bs]
	xloc := scr.xloc[:bs]
	xnew := scr.xnew[:bs]
	x0 := scr.x0[:bs]
	invd := sp.InvDiag[v.lo:v.hi]

	// Fused gather: one streaming pass over the packed off-block entries
	// computes the frozen right-hand side and loads the block's starting
	// values.
	for r := 0; r < bs; r++ {
		acc := b[v.lo+r]
		for p := v.offPtr[r]; p < v.offPtr[r+1]; p++ {
			acc -= v.offVal[p] * offRead.Load(int(v.offCols[p]))
		}
		s[r] = acc
		xv := locRead.Load(v.lo + r)
		xloc[r] = xv
		x0[r] = xv
	}

	if rule.beta != 0 && rule.prev != nil {
		// Second-order (momentum) sweeps: each sweep adds β(x_k − x_{k−1})
		// to the first-order update and rotates the three buffers so x_k
		// becomes the next sweep's x_{k−1}. The trail persists across block
		// executions through rule.prev, written back after the last sweep.
		beta := rule.beta
		xprev := scr.xprev[:bs]
		prev := rule.prev[v.lo:v.hi]
		copy(xprev, prev)
		for sweep := 0; sweep < k; sweep++ {
			for r := 0; r < bs; r++ {
				acc := s[r]
				for p := v.locPtr[r]; p < v.locPtr[r+1]; p++ {
					acc -= v.locVal[p] * xloc[v.locCols[p]]
				}
				xnew[r] = (1-omega)*xloc[r] + omega*acc*invd[r] + beta*(xloc[r]-xprev[r])
			}
			xprev, xloc, xnew = xloc, xnew, xprev
		}
		storeMomentum(prev, xprev, rule.f32)
	} else {
		// k synchronous Jacobi sweeps streaming the packed local sub-CSR
		// (diagonal structurally excluded, columns block-local).
		for sweep := 0; sweep < k; sweep++ {
			for r := 0; r < bs; r++ {
				acc := s[r]
				for p := v.locPtr[r]; p < v.locPtr[r+1]; p++ {
					acc -= v.locVal[p] * xloc[v.locCols[p]]
				}
				xnew[r] = (1-omega)*xloc[r] + omega*acc*invd[r]
			}
			xloc, xnew = xnew, xloc
		}
	}

	// Publish the block's components to global memory, accumulating the
	// squared update norm for the incremental residual estimate.
	var d2 float64
	for r := 0; r < bs; r++ {
		nv := xloc[r]
		write.Store(v.lo+r, nv)
		d := nv - x0[r]
		d2 += d * d
	}
	return d2
}

// runBlockKernelReference is the pre-staging two-step implementation:
// a gather pass picking the off-block entries out of the global CSR arrays,
// then k sweeps over the strided in-block segments with a per-entry
// diagonal branch. It is retained as the executable specification the
// fused kernel is property-tested against (bit-identical iterates), and as
// the fallback for matrices whose column indices exceed int32.
func runBlockKernelReference(a *sparse.CSR, sp *sparse.Splitting, b []float64, v *blockView,
	k int, rule *updateRule, offRead, locRead valueReader, write valueWriter, scr *kernelScratch) float64 {

	omega := rule.omega
	bs := v.hi - v.lo
	s := scr.s[:bs]
	xloc := scr.xloc[:bs]
	xnew := scr.xnew[:bs]
	x0 := scr.x0[:bs]

	// Off-block contribution, frozen for the local sweeps.
	for i := v.lo; i < v.hi; i++ {
		r := i - v.lo
		acc := b[i]
		for p := a.RowPtr[i]; p < v.inLo[r]; p++ {
			acc -= a.Val[p] * offRead.Load(a.ColIdx[p])
		}
		for p := v.inHi[r]; p < a.RowPtr[i+1]; p++ {
			acc -= a.Val[p] * offRead.Load(a.ColIdx[p])
		}
		s[r] = acc
		xv := locRead.Load(i)
		xloc[r] = xv
		x0[r] = xv
	}

	if rule.beta != 0 && rule.prev != nil {
		// Momentum sweeps, mirroring runBlockKernel's rotation exactly.
		beta := rule.beta
		xprev := scr.xprev[:bs]
		prev := rule.prev[v.lo:v.hi]
		copy(xprev, prev)
		for sweep := 0; sweep < k; sweep++ {
			for i := v.lo; i < v.hi; i++ {
				r := i - v.lo
				acc := s[r]
				for p := v.inLo[r]; p < v.inHi[r]; p++ {
					j := a.ColIdx[p]
					if j != i {
						acc -= a.Val[p] * xloc[j-v.lo]
					}
				}
				xnew[r] = (1-omega)*xloc[r] + omega*acc*sp.InvDiag[i] + beta*(xloc[r]-xprev[r])
			}
			xprev, xloc, xnew = xloc, xnew, xprev
		}
		storeMomentum(prev, xprev, rule.f32)
	} else {
		// k synchronous Jacobi sweeps on the subdomain.
		for sweep := 0; sweep < k; sweep++ {
			for i := v.lo; i < v.hi; i++ {
				r := i - v.lo
				acc := s[r]
				for p := v.inLo[r]; p < v.inHi[r]; p++ {
					j := a.ColIdx[p]
					if j != i {
						acc -= a.Val[p] * xloc[j-v.lo]
					}
				}
				xnew[r] = (1-omega)*xloc[r] + omega*acc*sp.InvDiag[i]
			}
			xloc, xnew = xnew, xloc
		}
	}

	// Publish the block's components to global memory.
	var d2 float64
	for i := v.lo; i < v.hi; i++ {
		r := i - v.lo
		nv := xloc[r]
		write.Store(i, nv)
		d := nv - x0[r]
		d2 += d * d
	}
	return d2
}
