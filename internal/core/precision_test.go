package core

import (
	"testing"

	"repro/internal/mats"
	"repro/internal/vecmath"
)

// f32Floor is the documented float32 residual floor for a solve of Ax=b:
// the iterate is stored rounded to float32, so the best reachable residual
// is bounded by the rounding perturbation amplified through A,
//
//	‖r32‖ ≲ C · eps32 · ‖A‖∞ · (1 + ‖x‖₂),   eps32 = 2⁻²⁴,
//
// with C a modest constant absorbing the iteration dynamics (docs/KERNELS.md
// documents and the tests enforce C = 64).
func f32Floor(rowSumNorm, xNorm float64) float64 {
	const eps32 = 1.0 / (1 << 24)
	return 64 * eps32 * rowSumNorm * (1 + xNorm)
}

func isF32Valued(x []float64) bool {
	for _, v := range x {
		if float64(float32(v)) != v {
			return false
		}
	}
	return true
}

func TestPrecisionValidate(t *testing.T) {
	a := mats.Poisson2D(6, 6)
	b := onesRHS(a)
	for _, bad := range []string{"f16", "double", "F32"} {
		opt := defaultOpts()
		opt.Precision = bad
		if _, err := Solve(a, b, opt); err == nil {
			t.Errorf("Options.Precision=%q: want error", bad)
		}
		if _, err := SolveFreeRunning(a, b, FreeRunningOptions{
			BlockSize: 8, LocalIters: 2, MaxBlockUpdates: 100,
			Tolerance: 1e-6, Precision: bad,
		}); err == nil {
			t.Errorf("FreeRunningOptions.Precision=%q: want error", bad)
		}
	}
	for _, ok := range []string{"", PrecF64, PrecF32} {
		opt := defaultOpts()
		opt.Precision = ok
		if _, err := Solve(a, b, opt); err != nil {
			t.Errorf("Options.Precision=%q: %v", ok, err)
		}
	}
}

// TestF32ConvergesOnPaperMatrices is the acceptance check: on the three
// convergent paper systems, the f32-storage solve reaches the documented
// residual floor while every published iterate component stays exactly
// representable in float32.
func TestF32ConvergesOnPaperMatrices(t *testing.T) {
	for _, name := range []string{"Chem97ZtZ", "fv1", "Trefethen_2000"} {
		a := mats.MustGenerate(name).A
		b := onesRHS(a)
		opt := defaultOpts()
		opt.BlockSize = 448
		opt.MaxGlobalIters = 400
		opt.Precision = PrecF32
		// Stop at the documented floor: tightening the tolerance past it
		// only stalls, which is exactly what the floor formalizes.
		floor := f32Floor(a.MaxAbsRowSum(), vecmath.Nrm2(vecmath.Ones(a.Cols)))
		opt.Tolerance = floor
		res, err := Solve(a, b, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Errorf("%s: f32 solve did not reach the documented floor %.3g (residual %.3g after %d iters)",
				name, floor, res.Residual, res.GlobalIterations)
		}
		if !isF32Valued(res.X) {
			t.Errorf("%s: f32 solve published a component not representable in float32", name)
		}
	}
}

// TestF32MatchesF64WithinFloor runs the same seeded schedule in both
// precisions and checks the residual gap never exceeds the documented
// floor — the f32 path tracks the f64 path until rounding dominates.
func TestF32MatchesF64WithinFloor(t *testing.T) {
	for _, name := range []string{"Chem97ZtZ", "fv1", "Trefethen_2000"} {
		a := mats.MustGenerate(name).A
		b := onesRHS(a)
		opt := defaultOpts()
		opt.BlockSize = 448
		opt.Tolerance = 0
		opt.MaxGlobalIters = 120
		opt.RecordHistory = true
		r64, err := Solve(a, b, opt)
		if err != nil {
			t.Fatalf("%s f64: %v", name, err)
		}
		opt.Precision = PrecF32
		r32, err := Solve(a, b, opt)
		if err != nil {
			t.Fatalf("%s f32: %v", name, err)
		}
		floor := f32Floor(a.MaxAbsRowSum(), vecmath.Nrm2(r64.X))
		for i := range r64.History {
			if r32.History[i] > r64.History[i]+floor {
				t.Fatalf("%s iter %d: r32 %.3g exceeds r64 %.3g + floor %.3g",
					name, i+1, r32.History[i], r64.History[i], floor)
			}
		}
	}
}

// TestF32AllEngines checks every engine accepts PrecF32 and keeps the
// iterate f32-valued throughout (spot-checked via AfterIteration where the
// engine exposes it, and on the final X everywhere).
func TestF32AllEngines(t *testing.T) {
	a := mats.FV(20, 16, 1.368)
	b := onesRHS(a)

	run := func(label string, opt Options) {
		opt.Precision = PrecF32
		opt.AfterIteration = func(iter int, x VectorAccess) {
			for i := 0; i < x.Len(); i += 37 {
				if v := x.Get(i); float64(float32(v)) != v {
					t.Fatalf("%s iter %d: x[%d]=%v not f32-valued", label, iter, i, v)
				}
			}
		}
		res, err := Solve(a, b, opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !isF32Valued(res.X) {
			t.Fatalf("%s: final X not f32-valued", label)
		}
	}
	simOpt := defaultOpts()
	simOpt.MaxGlobalIters = 60
	simOpt.Tolerance = 1e-4
	run("simulated", simOpt)

	gorOpt := simOpt
	gorOpt.Engine = EngineGoroutine
	gorOpt.Workers = 4
	run("goroutine", gorOpt)

	exOpt := simOpt
	exOpt.ExactLocal = true
	run("exact-local", exOpt)

	fr, err := SolveFreeRunning(a, b, FreeRunningOptions{
		BlockSize: 64, LocalIters: 3, MaxBlockUpdates: 4000,
		Tolerance: 1e-4, Workers: 3, Precision: PrecF32,
	})
	if err != nil {
		t.Fatalf("freerunning: %v", err)
	}
	if !isF32Valued(fr.X) {
		t.Fatal("freerunning: final X not f32-valued")
	}
}

// TestF32BitIdenticalAcrossKernels: the f32 rounding happens in the shared
// publish wrapper, outside any kernel, so kernel dispatch must stay
// bit-transparent in f32 mode exactly as in f64.
func TestF32BitIdenticalAcrossKernels(t *testing.T) {
	a := mats.FV(24, 18, 1.368)
	b := onesRHS(a)
	opt := Options{
		BlockSize: 64, LocalIters: 3, Omega: 0.9,
		MaxGlobalIters: 30, RecordHistory: true,
		Seed: 5, StaleProb: 0.25, Precision: PrecF32,
	}
	var base Result
	for i, k := range dispatchKernels {
		res, err := SolveWithPlan(planForKernel(t, a, 64, k), b, opt)
		if err != nil {
			t.Fatalf("solve (%v): %v", k, err)
		}
		if i == 0 {
			base = res
			continue
		}
		requireBitIdentical(t, res, base)
	}
}
