package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/vecmath"
)

// The basic async-(k) solve on the model problem.
func ExampleSolve() {
	a := mats.Poisson2D(16, 16)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))

	res, err := core.Solve(a, b, core.Options{
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 1000,
		Tolerance:      1e-10,
		Seed:           1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("converged: %v, x[0] ≈ %.4f\n", res.Converged, res.X[0])
	// Output:
	// converged: true, x[0] ≈ 1.0000
}

// Recording the Chazan–Miranker trace: fairness and bounded shifts.
func ExampleSolve_trace() {
	a := mats.Poisson2D(16, 16)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))

	res, err := core.Solve(a, b, core.Options{
		BlockSize:      64,
		LocalIters:     2,
		MaxGlobalIters: 10,
		RecordTrace:    true,
		Seed:           1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tr := res.Trace
	fmt.Printf("well-posed: %v\n", tr.Validate(1) == nil)
	fmt.Printf("max shift: %d\n", tr.MaxShift)
	// Output:
	// well-posed: true
	// max shift: 1
}

// Pre-flight convergence analysis, the paper's §2.2/§3.1 workflow.
func ExampleCheckConvergence() {
	r, err := core.CheckConvergence(mats.Trefethen(300), 50, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("jacobi converges: %v, async guaranteed: %v\n",
		r.JacobiConverges, r.AsyncGuaranteed)
	// Output:
	// jacobi converges: true, async guaranteed: true
}
