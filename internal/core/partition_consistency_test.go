package core

import (
	"errors"
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
)

// solveAllEngines runs the same system through the three execution engines
// and returns their solutions, failing the test on any error or
// non-convergence.
func solveAllEngines(t *testing.T, a *sparse.CSR, blockSize int) map[string][]float64 {
	t.Helper()
	b := onesRHS(a)
	out := make(map[string][]float64, 3)

	for _, engine := range []EngineKind{EngineSimulated, EngineGoroutine} {
		res, err := Solve(a, b, Options{
			BlockSize: blockSize, LocalIters: 5, MaxGlobalIters: 2000,
			Tolerance: 1e-10, Engine: engine, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !res.Converged {
			t.Fatalf("%v: not converged, residual %g", engine, res.Residual)
		}
		out[engine.String()] = res.X
	}

	fr, err := SolveFreeRunning(a, b, FreeRunningOptions{
		BlockSize: blockSize, LocalIters: 5,
		MaxBlockUpdates: 1_000_000, Tolerance: 1e-10,
	})
	if err != nil {
		t.Fatalf("freerunning: %v", err)
	}
	if !fr.Converged {
		t.Fatalf("freerunning: not converged, residual %g", fr.Residual)
	}
	out["freerunning"] = fr.X
	return out
}

// TestEnginesAgreeOnRaggedPartitions is the cross-engine half of the
// partition edge-case satellite: block sizes that do not divide n (down
// to a trailing block of a single row) and the single-block degenerate
// case must leave all three engines agreeing on the solution.
func TestEnginesAgreeOnRaggedPartitions(t *testing.T) {
	cases := []struct {
		name      string
		a         *sparse.CSR
		blockSize int
	}{
		// 225 rows / 32 → 8 blocks, the last holding a single row.
		{"trailing one-row block", mats.Poisson2D(15, 15), 32},
		// 225 rows / 50 → ragged 25-row tail.
		{"ragged tail", mats.Poisson2D(15, 15), 50},
		// One block spanning everything: async-(k) degenerates to a
		// plain (damped) Jacobi-style sweep; still must solve.
		{"single block exact", mats.Trefethen(120), 120},
		{"single block oversized", mats.Trefethen(120), 512},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sols := solveAllEngines(t, c.a, c.blockSize)
			for name, x := range sols {
				checkSolvesOnes(t, name, x, 1e-6)
			}
		})
	}
}

// emptyRowCSR is diagonally dominant except one structurally empty row.
func emptyRowCSR(n, empty int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		if i == empty {
			continue
		}
		c.Add(i, i, 4)
		if i > 0 && i-1 != empty {
			c.Add(i, i-1, -1)
		}
		if i < n-1 && i+1 != empty {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// TestEmptyRowRejectedByAllEngines pins the other half of the satellite:
// a system with an empty row (zero diagonal) must be rejected with
// sparse.ErrZeroDiagonal by every engine, not solved to garbage by some
// and rejected by others. The empty row is placed both inside a full
// block and alone in the ragged trailing block.
func TestEmptyRowRejectedByAllEngines(t *testing.T) {
	for _, emptyAt := range []int{3, 9} { // n=10, bs=3: mid-block and last (ragged) block
		a := emptyRowCSR(10, emptyAt)
		b := make([]float64, 10)
		for _, engine := range []EngineKind{EngineSimulated, EngineGoroutine} {
			_, err := Solve(a, b, Options{
				BlockSize: 3, LocalIters: 2, MaxGlobalIters: 10, Tolerance: 1e-8, Seed: 1, Engine: engine,
			})
			if !errors.Is(err, sparse.ErrZeroDiagonal) {
				t.Errorf("empty row %d, %v: err = %v, want sparse.ErrZeroDiagonal", emptyAt, engine, err)
			}
		}
		_, err := SolveFreeRunning(a, b, FreeRunningOptions{
			BlockSize: 3, LocalIters: 2, MaxBlockUpdates: 100, Tolerance: 1e-8,
		})
		if !errors.Is(err, sparse.ErrZeroDiagonal) {
			t.Errorf("empty row %d, freerunning: err = %v, want sparse.ErrZeroDiagonal", emptyAt, err)
		}
	}
}
