package core

import (
	"math/rand"
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
)

// TestWarmStartBeatsColdProperty is the session layer's property test:
// over generated SPD time-stepping sequences — each step's RHS a small
// drift of the previous one, the implicit-Euler regime ROADMAP item 4
// targets — a warm-started step never needs more global iterations than
// the cold solve of the identical system under the identical schedule
// seed, and needs strictly fewer on at least 80% of the steps. Runs on
// the deterministic simulated engine so the comparison is exact, and
// under -race in CI like the rest of the package.
func TestWarmStartBeatsColdProperty(t *testing.T) {
	type system struct {
		name string
		a    *sparse.CSR
	}
	systems := []system{
		{"diagdominant-200", mats.DiagDominant(200, 3, 1.6)},
		{"diagdominant-350", mats.DiagDominant(350, 5, 2.5)},
		{"trefethen-250", mats.Trefethen(250)},
		{"poisson2d-14x14", mats.Poisson2D(14, 14)},
	}

	const (
		steps       = 10
		eps         = 5e-4 // per-step relative RHS drift
		strictFloor = 0.8
	)
	totalSteps, strictWins := 0, 0
	for si, sys := range systems {
		p, err := NewPlan(sys.a, 32, false)
		if err != nil {
			t.Fatalf("%s: %v", sys.name, err)
		}
		opt := Options{
			BlockSize:      32,
			LocalIters:     3,
			MaxGlobalIters: 5000,
			Tolerance:      1e-10,
			Engine:         EngineSimulated,
		}
		rng := rand.New(rand.NewSource(int64(7000 + si)))
		b := make([]float64, sys.a.Rows)
		for i := range b {
			b[i] = 1 + rng.Float64()
		}

		sess := NewSession(p)
		for k := 0; k < steps; k++ {
			// Drift the RHS: the solution moves a little, the structure not
			// at all — one time step of an implicit scheme.
			if k > 0 {
				for i := range b {
					b[i] *= 1 + eps*(2*rng.Float64()-1)
				}
			}
			so := opt
			so.Seed = int64(500*si + k + 1) // identical schedule for both runs

			warm, err := sess.Step(b, so)
			if err != nil {
				t.Fatalf("%s step %d: %v", sys.name, k, err)
			}
			cold, err := SolveWithPlan(p, b, so)
			if err != nil {
				t.Fatalf("%s cold %d: %v", sys.name, k, err)
			}
			if !warm.Converged || !cold.Converged {
				t.Fatalf("%s step %d: warm converged=%v cold converged=%v",
					sys.name, k, warm.Converged, cold.Converged)
			}
			if k == 0 {
				// The first step has no warm state; both runs are the same
				// cold solve and must agree exactly. Not scored.
				if warm.GlobalIterations != cold.GlobalIterations {
					t.Fatalf("%s step 0: session cold step took %d iterations, plain solve %d",
						sys.name, warm.GlobalIterations, cold.GlobalIterations)
				}
				continue
			}
			if warm.GlobalIterations > cold.GlobalIterations {
				t.Errorf("%s step %d: warm start took %d iterations, cold solve %d — warm must never be worse",
					sys.name, k, warm.GlobalIterations, cold.GlobalIterations)
			}
			totalSteps++
			if warm.GlobalIterations < cold.GlobalIterations {
				strictWins++
			}
		}
	}
	if frac := float64(strictWins) / float64(totalSteps); frac < strictFloor {
		t.Errorf("warm start strictly beat cold on %d/%d steps (%.0f%%), want ≥ %.0f%%",
			strictWins, totalSteps, 100*frac, 100*strictFloor)
	} else {
		t.Logf("warm start strictly beat cold on %d/%d steps (%.0f%%)", strictWins, totalSteps, 100*frac)
	}
}
