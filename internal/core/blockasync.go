// Package blockasync implements the paper's primary contribution: the
// block-asynchronous relaxation method async-(k) for GPUs (Algorithm 1,
// Eq. 4).
//
// The linear system is decomposed into contiguous blocks of rows
// ("subdomains"); each block corresponds to one GPU thread block. Blocks
// iterate asynchronously with respect to each other — they read whatever
// values of the off-block components happen to be in global memory — while
// inside a block k synchronous Jacobi-like sweeps are performed with the
// off-block contribution frozen. One *global iteration* sweeps every block
// exactly once (in chaotic order), so every component is updated k times
// per global iteration.
//
// Three execution engines are provided:
//
//   - EngineSimulated: a deterministic, seeded reproduction of the GPU's
//     chaotic block scheduling (gpusim.Scheduler). Blocks execute
//     sequentially in scheduler order against the live iterate, giving the
//     "block Gauss-Seidel flavor" the paper notes; a configurable fraction
//     of blocks instead reads the snapshot from the start of the global
//     iteration, modeling overlapping execution. Fully reproducible; can
//     record a Chazan–Miranker update/shift trace.
//
//   - EngineGoroutine: real asynchrony. Blocks are dispatched to a pool of
//     workers (default 14, the Fermi C2070's multiprocessor count) and
//     read/write the shared iterate through per-component atomics with no
//     further synchronization. Interleavings — and therefore results —
//     genuinely vary between runs, like the paper's 1000-run study (§4.1).
//
//   - EngineFreeRunning: an extension with no global barrier at all; see
//     SolveFreeRunning.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// EngineKind selects the execution engine.
type EngineKind int

const (
	// EngineSimulated executes blocks deterministically in a seeded
	// chaotic order (reproducible).
	EngineSimulated EngineKind = iota
	// EngineGoroutine executes blocks concurrently on a worker pool with
	// relaxed-consistency shared memory (non-deterministic).
	EngineGoroutine
)

// String implements fmt.Stringer.
func (e EngineKind) String() string {
	switch e {
	case EngineSimulated:
		return "simulated"
	case EngineGoroutine:
		return "goroutine"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(e))
	}
}

// Options configures a block-asynchronous solve.
type Options struct {
	// BlockSize is the subdomain size in rows. The paper uses 448 for
	// production runs and 128 for the non-determinism study. Required > 0.
	BlockSize int
	// LocalIters is k in async-(k): Jacobi sweeps per block per global
	// iteration, with off-block values frozen. Required > 0 (paper default 5).
	LocalIters int
	// ExactLocal replaces the k local Jacobi sweeps with an *exact* dense
	// solve of each subdomain system (the k→∞ limit of the trade-off in
	// §4.3: classical block Jacobi under the chaotic schedule). LocalIters
	// and Omega are ignored when set.
	ExactLocal bool
	// Omega damps (ω<1) or over-relaxes (ω>1) every local update:
	// x_i ← (1−ω)x_i + ω·(Jacobi update). Zero selects 1 (the paper's
	// plain scheme). With ω = τ = 2/(λ₁+λ_n) the block-asynchronous
	// iteration converges on SPD systems with ρ(B) > 1, extending the
	// paper's §4.2 scaled-Jacobi remark to the asynchronous method.
	Omega float64
	// MaxGlobalIters bounds the number of global iterations. Required > 0.
	MaxGlobalIters int
	// Tolerance is the absolute l2 residual target; 0 disables the
	// stopping test (run exactly MaxGlobalIters, as the paper's
	// per-iteration figures do).
	Tolerance float64
	// RecordHistory stores ‖b−Ax‖₂ after every global iteration.
	RecordHistory bool
	// InitialGuess seeds x if non-nil (not modified); zero vector otherwise.
	InitialGuess []float64
	// Ctx, if non-nil, is checked before every block execution (and at
	// every global-iteration boundary): once it is done the solve returns
	// early with an error wrapping both ErrCanceled and the context's
	// error (deadline or cancellation), so cancellation latency is bounded
	// by one block sweep even on large systems. The partial iterate is
	// returned in Result.X. A nil Ctx never cancels.
	Ctx context.Context

	// Engine selects the execution engine (default EngineSimulated).
	Engine EngineKind
	// Seed drives the chaotic scheduler. Runs with equal non-zero seeds
	// are identical under EngineSimulated; under EngineGoroutine the seed
	// only shapes dispatch order, not the race outcomes. Seed 0 (the zero
	// value) selects a distinct per-run stream derived from a
	// process-local counter — it does NOT mean "seed with 0", because
	// every caller leaving Seed unset would then silently share one
	// stream. Callers that need reproducibility must set a non-zero seed
	// (or replay a recorded schedule, whose metadata retains the derived
	// seed).
	Seed int64
	// Recurrence in [0,1] is the scheduler's pattern persistence (§4.1
	// observes GPU scheduling follows a recurring pattern). Default 0.8.
	Recurrence float64
	// StaleProb in [0,1] applies to EngineSimulated and adds chaos beyond
	// the wave model: with this probability a block reads the snapshot
	// from the start of the whole global iteration rather than of its
	// dispatch wave (a maximally late dispatch). Default 0 — staleness
	// then derives purely from the scheduling order, as on the hardware.
	StaleProb float64
	// Workers is the worker-pool size for EngineGoroutine; default 14
	// (Fermi C2070 multiprocessors).
	Workers int

	// SkipBlock, if non-nil, is consulted before each block execution;
	// returning true skips the block for that global iteration. Package
	// fault uses this hook to inject core failures (§4.5).
	SkipBlock func(iter, block int) bool
	// RecordTrace (EngineSimulated only) collects the Chazan–Miranker
	// update/shift statistics into Result.Trace.
	RecordTrace bool
	// AfterIteration, if non-nil, runs after each global iteration's
	// barrier with read/write access to the iterate. Package fault uses
	// this hook to inject *silent* errors (§4.5: undetected corruption);
	// monitoring code can use it to snoop on convergence.
	AfterIteration func(iter int, x VectorAccess)

	// Record, if non-nil, captures the executed block schedule: every
	// engine appends one sched.Event per block execution in commit order.
	// Take Record.Schedule() after the solve returns.
	Record *sched.Recorder
	// Replay, if non-nil, drives the engine along a previously captured
	// schedule instead of the seeded chaotic scheduler. The simulated
	// engine reproduces a simulated-engine capture bit-for-bit (order,
	// stale masks and race coin flips are all restored); captures from
	// the concurrent engines replay as a canonical deterministic
	// execution of the recorded block sequence. SkipBlock and Chaos are
	// ignored during replay (their effects are already baked into the
	// recorded stream).
	Replay *sched.Schedule
	// Chaos, if non-nil, injects adversarial scheduling perturbations
	// (delays, dispatch reordering, forced stale reads) into the engines.
	// Package fault provides a seeded implementation; internal/service
	// exposes it behind a debug flag.
	Chaos *ChaosHooks

	// Metrics, if non-nil, receives per-engine counters (global iterations,
	// block sweeps, stale reads, chaos injections, replay events) and the
	// per-iteration residual into its bounded ring. Setting Metrics makes
	// the engines compute the residual every global iteration even when
	// Tolerance is 0 and RecordHistory is false, but it never changes
	// control flow: the stopping test and divergence detection stay
	// governed by Tolerance/RecordHistory alone.
	Metrics *SolveMetrics
}

// runSeedCounter backs the per-run stream derivation for Seed == 0.
var runSeedCounter atomic.Int64

// nextRunSeed derives a distinct seed for a run that left Options.Seed at
// the zero value: a splitmix64-style golden-ratio scramble of a
// process-local counter. The result is never 0, so a derived seed is
// always distinguishable from "unset".
func nextRunSeed() int64 {
	z := uint64(runSeedCounter.Add(1)) * 0x9E3779B97F4A7C15
	z ^= z >> 31
	return int64(z | 1)
}

// withDefaults fills zero-value optional fields.
func (o Options) withDefaults() Options {
	if o.Omega == 0 {
		o.Omega = 1
	}
	if o.Seed == 0 {
		o.Seed = nextRunSeed()
	}
	if o.Recurrence == 0 {
		o.Recurrence = 0.8
	}
	if o.Workers == 0 {
		o.Workers = 14
	}
	return o
}

func (o Options) validate(a *sparse.CSR, b []float64) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("core: matrix must be square, have %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return fmt.Errorf("core: rhs length %d does not match dimension %d", len(b), a.Rows)
	}
	if o.BlockSize <= 0 {
		return fmt.Errorf("core: BlockSize must be positive, have %d", o.BlockSize)
	}
	if o.LocalIters <= 0 && !o.ExactLocal {
		return fmt.Errorf("core: LocalIters must be positive, have %d", o.LocalIters)
	}
	if o.MaxGlobalIters <= 0 {
		return fmt.Errorf("core: MaxGlobalIters must be positive, have %d", o.MaxGlobalIters)
	}
	if o.InitialGuess != nil && len(o.InitialGuess) != a.Rows {
		return fmt.Errorf("core: initial guess length %d does not match dimension %d", len(o.InitialGuess), a.Rows)
	}
	if o.Recurrence < 0 || o.Recurrence > 1 {
		return fmt.Errorf("core: Recurrence %g outside [0,1]", o.Recurrence)
	}
	if o.StaleProb < 0 || o.StaleProb > 1 {
		return fmt.Errorf("core: StaleProb %g outside [0,1]", o.StaleProb)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers must be nonnegative, have %d", o.Workers)
	}
	if o.Omega < 0 || o.Omega >= 2 {
		return fmt.Errorf("core: Omega must lie in (0,2), have %g", o.Omega)
	}
	return nil
}

// Result reports a block-asynchronous solve.
type Result struct {
	X                []float64
	GlobalIterations int
	Residual         float64 // final ‖b−Ax‖₂
	Converged        bool
	History          []float64 // per-global-iteration residuals if requested
	Trace            *Trace    // Chazan–Miranker statistics if requested
	NumBlocks        int
}

// Sentinel errors. All error returns of this package that describe one of
// these conditions wrap the corresponding sentinel, so callers can
// dispatch with errors.Is regardless of the message details.
var (
	// ErrDiverged is reported (wrapped) when the residual becomes
	// non-finite — the expected outcome on systems with ρ(|B|) > 1 such as
	// s1rmt3m1.
	ErrDiverged = errors.New("core: iteration diverged (non-finite residual)")
	// ErrCanceled is reported (wrapped, together with the context's own
	// error) when Options.Ctx is done before the solve finishes.
	ErrCanceled = errors.New("core: solve canceled")
	// ErrNotConverged marks a solve that exhausted its iteration budget
	// without reaching the requested tolerance. The engines themselves
	// report this condition via Result.Converged (running to the budget is
	// a legitimate outcome for the paper's per-iteration studies); callers
	// that require convergence — internal/service job execution, for one —
	// wrap ErrNotConverged so errors.Is works across layers.
	ErrNotConverged = errors.New("core: iteration did not converge within the budget")
)

// Solve runs async-(k) block-asynchronous relaxation on Ax = b.
//
// It is the one-shot entry point: the per-matrix setup (block partition,
// block views, inverse diagonal, LU factors for ExactLocal) is rebuilt on
// every call. Long-running callers should build the setup once with
// NewPlan and iterate with SolveWithPlan.
func Solve(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	p, err := NewPlan(a, opt.BlockSize, opt.ExactLocal)
	if err != nil {
		return Result{}, err
	}
	return SolveWithPlan(p, b, opt)
}

// checkResidual updates res with the current residual; it returns stop=true
// when the tolerance is met or the iteration has left the finite range.
func checkResidual(a *sparse.CSR, b, x []float64, opt Options, res *Result, iter int) (bool, error) {
	res.GlobalIterations = iter
	wantStop := opt.RecordHistory || opt.Tolerance != 0
	if !wantStop && opt.Metrics == nil {
		return false, nil
	}
	r := solver.Residual(a, b, x)
	res.Residual = r
	opt.Metrics.pushResidual(r)
	if opt.RecordHistory {
		res.History = append(res.History, r)
	}
	if !wantStop {
		// Metrics-only residual tracing must not alter control flow: with
		// Tolerance 0 the stopping test (and its divergence error) stays
		// disabled, exactly as for an uninstrumented run.
		return false, nil
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return true, fmt.Errorf("%w after %d global iterations", ErrDiverged, iter)
	}
	if opt.Tolerance > 0 && r <= opt.Tolerance {
		res.Converged = true
		return true, nil
	}
	return false, nil
}
