package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/certify"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// EngineKind selects the execution engine.
type EngineKind int

const (
	// EngineSimulated executes blocks deterministically in a seeded
	// chaotic order (reproducible).
	EngineSimulated EngineKind = iota
	// EngineGoroutine executes blocks concurrently on a worker pool with
	// relaxed-consistency shared memory (non-deterministic).
	EngineGoroutine
)

// String implements fmt.Stringer.
func (e EngineKind) String() string {
	switch e {
	case EngineSimulated:
		return "simulated"
	case EngineGoroutine:
		return "goroutine"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(e))
	}
}

// Options configures a block-asynchronous solve.
type Options struct {
	// BlockSize is the subdomain size in rows. The paper uses 448 for
	// production runs and 128 for the non-determinism study. Required > 0.
	BlockSize int
	// LocalIters is k in async-(k): Jacobi sweeps per block per global
	// iteration, with off-block values frozen. Required > 0 (paper default 5).
	LocalIters int
	// ExactLocal replaces the k local Jacobi sweeps with an *exact* dense
	// solve of each subdomain system (the k→∞ limit of the trade-off in
	// §4.3: classical block Jacobi under the chaotic schedule). LocalIters
	// and Omega are ignored when set.
	ExactLocal bool
	// Omega damps (ω<1) or over-relaxes (ω>1) every local update:
	// x_i ← (1−ω)x_i + ω·(Jacobi update). Zero selects 1 (the paper's
	// plain scheme). With ω = τ = 2/(λ₁+λ_n) the block-asynchronous
	// iteration converges on SPD systems with ρ(B) > 1, extending the
	// paper's §4.2 scaled-Jacobi remark to the asynchronous method.
	Omega float64
	// Method selects the update rule of the block sweeps (see RuleKind).
	// The zero value RuleJacobi is the paper's first-order weighted Jacobi;
	// RuleRichardson2 adds the heavy-ball momentum term β(x_k − x_{k−1}).
	// A RuleRichardson2 solve with Beta 0 runs the literal Jacobi code path
	// and is bit-identical to a RuleJacobi solve — the seam's equivalence
	// contract, enforced by the method-equivalence tests.
	Method RuleKind
	// Beta is the momentum coefficient of RuleRichardson2, in [0, 1).
	// Zero (the default) disables momentum entirely: no trail is allocated
	// and the kernels take the first-order path. Non-zero Beta requires
	// Method == RuleRichardson2 and is incompatible with ExactLocal (the
	// direct subdomain solves have no sweep recurrence to accelerate).
	Beta float64
	// MomentumGuess seeds the momentum trail x_{k−1} (a Session carrying
	// its trail across warm-started steps). Requires non-zero Beta and the
	// system dimension; nil starts the trail at the initial iterate, so the
	// first sweep's momentum term vanishes. Not modified by the solve.
	MomentumGuess []float64
	// MaxGlobalIters bounds the number of global iterations. Required > 0.
	MaxGlobalIters int
	// Tolerance is the absolute l2 residual target; 0 disables the
	// stopping test (run exactly MaxGlobalIters, as the paper's
	// per-iteration figures do).
	Tolerance float64
	// RecordHistory stores ‖b−Ax‖₂ after every global iteration.
	RecordHistory bool
	// ResidualEvery (barrier engines) spaces the exact residual checks:
	// with a value N > 1, the full-matrix SpMV behind the stopping test
	// runs only at checkpoint iterations (every N-th and the last), while
	// the iterations in between are gated by a free incremental estimate —
	// the residual scaled by the ratio of block-update norms ‖Δx‖₂, which
	// the kernels accumulate anyway. Convergence is only ever declared
	// from an exact check, so the reported residual is never an estimate;
	// the estimate can only defer a check, making at worst N−1 extra cheap
	// iterations before convergence is noticed. Values 0 and 1 mean exact
	// checks every iteration (the default). The gate requires a Tolerance
	// and disables itself when the per-iteration residual is itself the
	// output (RecordHistory or Metrics) or under ExactLocal.
	ResidualEvery int
	// InitialGuess seeds x if non-nil (not modified); zero vector otherwise.
	InitialGuess []float64
	// Ctx, if non-nil, is checked before every block execution (and at
	// every global-iteration boundary): once it is done the solve returns
	// early with an error wrapping both ErrCanceled and the context's
	// error (deadline or cancellation), so cancellation latency is bounded
	// by one block sweep even on large systems. The partial iterate is
	// returned in Result.X. A nil Ctx never cancels.
	Ctx context.Context

	// Engine selects the execution engine (default EngineSimulated).
	Engine EngineKind
	// Precision selects the iterate storage precision: "" or PrecF64 for
	// exact double precision, PrecF32 for float32 iterate storage with
	// float64 accumulation and float64 residual checks (see precision.go).
	// Valid for all engines; purely a storage choice, the matrix and
	// right-hand side stay float64.
	Precision string
	// Seed drives the chaotic scheduler. Runs with equal non-zero seeds
	// are identical under EngineSimulated; under EngineGoroutine the seed
	// only shapes dispatch order, not the race outcomes. Seed 0 (the zero
	// value) selects a distinct per-run stream derived from a
	// process-local counter — it does NOT mean "seed with 0", because
	// every caller leaving Seed unset would then silently share one
	// stream. Callers that need reproducibility must set a non-zero seed
	// (or replay a recorded schedule, whose metadata retains the derived
	// seed).
	Seed int64
	// Recurrence in [0,1] is the scheduler's pattern persistence (§4.1
	// observes GPU scheduling follows a recurring pattern). Default 0.8.
	Recurrence float64
	// StaleProb in [0,1] applies to EngineSimulated and adds chaos beyond
	// the wave model: with this probability a block reads the snapshot
	// from the start of the whole global iteration rather than of its
	// dispatch wave (a maximally late dispatch). Default 0 — staleness
	// then derives purely from the scheduling order, as on the hardware.
	StaleProb float64
	// Workers is the worker-pool size for EngineGoroutine; default 14
	// (Fermi C2070 multiprocessors).
	Workers int

	// SkipBlock, if non-nil, is consulted before each block execution;
	// returning true skips the block for that global iteration. Package
	// fault uses this hook to inject core failures (§4.5).
	SkipBlock func(iter, block int) bool
	// RecordTrace (EngineSimulated only) collects the Chazan–Miranker
	// update/shift statistics into Result.Trace.
	RecordTrace bool
	// AfterIteration, if non-nil, runs after each global iteration's
	// barrier with read/write access to the iterate. Package fault uses
	// this hook to inject *silent* errors (§4.5: undetected corruption);
	// monitoring code can use it to snoop on convergence.
	AfterIteration func(iter int, x VectorAccess)

	// Record, if non-nil, captures the executed block schedule: every
	// engine appends one sched.Event per block execution in commit order.
	// Take Record.Schedule() after the solve returns.
	Record *sched.Recorder
	// Replay, if non-nil, drives the engine along a previously captured
	// schedule instead of the seeded chaotic scheduler. The simulated
	// engine reproduces a simulated-engine capture bit-for-bit (order,
	// stale masks and race coin flips are all restored); captures from
	// the concurrent engines replay as a canonical deterministic
	// execution of the recorded block sequence. SkipBlock and Chaos are
	// ignored during replay (their effects are already baked into the
	// recorded stream).
	Replay *sched.Schedule
	// Chaos, if non-nil, injects adversarial scheduling perturbations
	// (delays, dispatch reordering, forced stale reads) into the engines.
	// Package fault provides a seeded implementation; internal/service
	// exposes it behind a debug flag.
	Chaos *ChaosHooks

	// Certify selects the admission-time convergence pre-flight
	// (certify.ModeOff, the default, skips it). ModeWarn certifies the
	// matrix before the first iteration and attaches the certificate to
	// Result.Certificate; ModeEnforce additionally refuses a Diverges
	// verdict with an error wrapping certify.ErrDivergent — the solve
	// then never iterates (Result still carries the certificate).
	Certify certify.Mode
	// CertifyOptions tunes the certifier work bounds; the zero value uses
	// the certifier defaults. Ignored when Certify is ModeOff.
	CertifyOptions certify.Options

	// Metrics, if non-nil, receives per-engine counters (global iterations,
	// block sweeps, stale reads, chaos injections, replay events) and the
	// per-iteration residual into its bounded ring. Setting Metrics makes
	// the engines compute the residual every global iteration even when
	// Tolerance is 0 and RecordHistory is false, but it never changes
	// control flow: the stopping test and divergence detection stay
	// governed by Tolerance/RecordHistory alone.
	Metrics *SolveMetrics

	// referenceKernel pins the engines to the pre-staging reference block
	// kernel; the bit-identity property tests use it to run whole solves
	// down both kernel paths.
	referenceKernel bool
}

// runSeedCounter backs the per-run stream derivation for Seed == 0.
var runSeedCounter atomic.Int64

// nextRunSeed derives a distinct seed for a run that left Options.Seed at
// the zero value: a splitmix64-style golden-ratio scramble of a
// process-local counter. The result is never 0, so a derived seed is
// always distinguishable from "unset".
func nextRunSeed() int64 {
	z := uint64(runSeedCounter.Add(1)) * 0x9E3779B97F4A7C15
	z ^= z >> 31
	return int64(z | 1)
}

// withDefaults fills zero-value optional fields.
func (o Options) withDefaults() Options {
	if o.Omega == 0 {
		o.Omega = 1
	}
	if o.Seed == 0 {
		o.Seed = nextRunSeed()
	}
	if o.Recurrence == 0 {
		o.Recurrence = 0.8
	}
	if o.Workers == 0 {
		o.Workers = 14
	}
	return o
}

func (o Options) validate(a *sparse.CSR, b []float64) error {
	if err := validateSystem(a, b); err != nil {
		return err
	}
	if o.BlockSize <= 0 {
		return fmt.Errorf("core: BlockSize must be positive, have %d", o.BlockSize)
	}
	if o.LocalIters <= 0 && !o.ExactLocal {
		return fmt.Errorf("core: LocalIters must be positive, have %d", o.LocalIters)
	}
	if o.MaxGlobalIters <= 0 {
		return fmt.Errorf("core: MaxGlobalIters must be positive, have %d", o.MaxGlobalIters)
	}
	if err := validateGuess(a.Rows, o.InitialGuess); err != nil {
		return err
	}
	if o.Recurrence < 0 || o.Recurrence > 1 {
		return fmt.Errorf("core: Recurrence %g outside [0,1]", o.Recurrence)
	}
	if o.StaleProb < 0 || o.StaleProb > 1 {
		return fmt.Errorf("core: StaleProb %g outside [0,1]", o.StaleProb)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers must be nonnegative, have %d", o.Workers)
	}
	if o.Omega < 0 || o.Omega >= 2 {
		return fmt.Errorf("core: Omega must lie in (0,2), have %g", o.Omega)
	}
	if o.Method != RuleJacobi && o.Method != RuleRichardson2 {
		return fmt.Errorf("core: unknown update rule %v", o.Method)
	}
	if o.Beta < 0 || o.Beta >= 1 {
		return fmt.Errorf("core: Beta must lie in [0,1), have %g", o.Beta)
	}
	if o.Beta != 0 && o.Method != RuleRichardson2 {
		return fmt.Errorf("core: Beta %g requires Method RuleRichardson2, have %s", o.Beta, o.Method)
	}
	if o.Beta != 0 && o.ExactLocal {
		return fmt.Errorf("core: momentum (Beta %g) is incompatible with ExactLocal: the exact subdomain solves have no sweep recurrence", o.Beta)
	}
	if o.MomentumGuess != nil {
		if o.Beta == 0 {
			return fmt.Errorf("core: MomentumGuess requires a non-zero Beta")
		}
		if len(o.MomentumGuess) != a.Rows {
			return fmt.Errorf("core: MomentumGuess length %d does not match dimension %d", len(o.MomentumGuess), a.Rows)
		}
	}
	if o.ResidualEvery < 0 {
		return fmt.Errorf("core: ResidualEvery must be nonnegative, have %d", o.ResidualEvery)
	}
	if err := validatePrecision(o.Precision); err != nil {
		return err
	}
	return nil
}

// Result reports a block-asynchronous solve.
type Result struct {
	X                []float64
	GlobalIterations int
	Residual         float64 // final ‖b−Ax‖₂
	Converged        bool
	History          []float64 // per-global-iteration residuals if requested
	Trace            *Trace    // Chazan–Miranker statistics if requested
	NumBlocks        int
	// Momentum is the final momentum trail x_{k−1} of a RuleRichardson2
	// solve with non-zero Beta — hand it to the next solve's MomentumGuess
	// to continue the second-order recurrence (Session does this
	// automatically). Nil on the first-order path.
	Momentum []float64
	// Certificate is the admission pre-flight output when Options.Certify
	// is ModeWarn or ModeEnforce; nil when certification was off.
	Certificate *certify.Certificate
}

// Sentinel errors. All error returns of this package that describe one of
// these conditions wrap the corresponding sentinel, so callers can
// dispatch with errors.Is regardless of the message details.
var (
	// ErrDiverged is reported (wrapped) when the residual becomes
	// non-finite — the expected outcome on systems with ρ(|B|) > 1 such as
	// s1rmt3m1.
	ErrDiverged = errors.New("core: iteration diverged (non-finite residual)")
	// ErrCanceled is reported (wrapped, together with the context's own
	// error) when Options.Ctx is done before the solve finishes.
	ErrCanceled = errors.New("core: solve canceled")
	// ErrNotConverged marks a solve that exhausted its iteration budget
	// without reaching the requested tolerance. The engines themselves
	// report this condition via Result.Converged (running to the budget is
	// a legitimate outcome for the paper's per-iteration studies); callers
	// that require convergence — internal/service job execution, for one —
	// wrap ErrNotConverged so errors.Is works across layers.
	ErrNotConverged = errors.New("core: iteration did not converge within the budget")
)

// Solve runs async-(k) block-asynchronous relaxation on Ax = b.
//
// It is the one-shot entry point: the per-matrix setup (block partition,
// block views, inverse diagonal, LU factors for ExactLocal) is rebuilt on
// every call. Long-running callers should build the setup once with
// NewPlan and iterate with SolveWithPlan.
func Solve(a *sparse.CSR, b []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(a, b); err != nil {
		return Result{}, err
	}
	p, err := NewPlan(a, opt.BlockSize, opt.ExactLocal)
	if err != nil {
		return Result{}, err
	}
	return SolveWithPlan(p, b, opt)
}

// residualState carries a solve's residual bookkeeping: the scratch vector
// the exact checks compute into (so they allocate nothing) and the anchors
// of the Options.ResidualEvery incremental estimate. One exact checkpoint
// records the pair (r, δ) of residual and block-update norm; between
// checkpoints the residual is estimated as r̂ = r·(δ_now/δ_anchor) — both
// norms contract at the iteration's asymptotic rate, so their ratio tracks
// the residual's decay without touching the matrix.
type residualState struct {
	scratch   []float64
	every     int
	tol       float64
	lastExact float64 // residual at the last exact checkpoint
	lastDelta float64 // ‖Δx‖₂ at the last exact checkpoint
	haveExact bool
}

// newResidualState sizes the gate for one solve. The incremental estimate
// only engages when it cannot change observable output: there must be a
// tolerance to estimate against, and no consumer of the per-iteration
// residual (RecordHistory, Metrics). ExactLocal solves keep exact checks —
// the direct subdomain solves do not produce an update norm.
func newResidualState(opt Options, exactLocal bool, scratch []float64) *residualState {
	rs := &residualState{scratch: scratch, every: opt.ResidualEvery, tol: opt.Tolerance}
	if opt.Tolerance <= 0 || opt.RecordHistory || opt.Metrics != nil || exactLocal {
		rs.every = 0
	}
	return rs
}

// skip reports whether iteration iter may defer the exact residual check:
// only strictly between checkpoints, with a finite nonzero update norm and
// an incremental estimate still clearly above the tolerance.
func (rs *residualState) skip(iter, maxIters int, delta2 float64) bool {
	if rs == nil || rs.every <= 1 || iter >= maxIters || iter%rs.every == 0 {
		return false
	}
	if !rs.haveExact || rs.lastDelta <= 0 {
		return false
	}
	if !(delta2 > 0) || math.IsInf(delta2, 0) {
		// Stagnation, NaN or overflow in the update: resolve it with an
		// exact check (divergence detection must not be deferred).
		return false
	}
	est := rs.lastExact * (math.Sqrt(delta2) / rs.lastDelta)
	return est > rs.tol
}

// checkResidual updates res with the current residual; it returns stop=true
// when the tolerance is met or the iteration has left the finite range.
// delta2 is the summed squared block-update norm of the iteration (the
// estimate anchor); rs must be non-nil.
func checkResidual(a *sparse.CSR, b, x []float64, opt Options, res *Result, iter int, delta2 float64, rs *residualState) (bool, error) {
	res.GlobalIterations = iter
	wantStop := opt.RecordHistory || opt.Tolerance != 0
	if !wantStop && opt.Metrics == nil {
		return false, nil
	}
	r := residualInto(rs.scratch, a, b, x)
	rs.lastExact, rs.lastDelta, rs.haveExact = r, math.Sqrt(delta2), true
	res.Residual = r
	opt.Metrics.pushResidual(r)
	if opt.RecordHistory {
		res.History = append(res.History, r)
	}
	if !wantStop {
		// Metrics-only residual tracing must not alter control flow: with
		// Tolerance 0 the stopping test (and its divergence error) stays
		// disabled, exactly as for an uninstrumented run.
		return false, nil
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return true, fmt.Errorf("%w after %d global iterations", ErrDiverged, iter)
	}
	if opt.Tolerance > 0 && r <= opt.Tolerance {
		res.Converged = true
		return true, nil
	}
	return false, nil
}
