package core

import (
	"math"
	"sync/atomic"
)

// AtomicVector is a float64 vector supporting lock-free concurrent
// component reads and writes. It is the shared iterate of the goroutine
// engines: blocks running on different workers read and write components
// without any synchronization beyond per-component atomicity — exactly the
// relaxed consistency of the chaotic relaxation model (values read are
// always *some* previously written value, but possibly a stale one).
type AtomicVector struct {
	bits []uint64
}

// NewAtomicVector creates a vector initialized from src.
func NewAtomicVector(src []float64) *AtomicVector {
	v := &AtomicVector{bits: make([]uint64, len(src))}
	for i, x := range src {
		v.bits[i] = math.Float64bits(x)
	}
	return v
}

// Len returns the vector length.
func (v *AtomicVector) Len() int { return len(v.bits) }

// Load atomically reads component i.
func (v *AtomicVector) Load(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&v.bits[i]))
}

// Store atomically writes component i.
func (v *AtomicVector) Store(i int, x float64) {
	atomic.StoreUint64(&v.bits[i], math.Float64bits(x))
}

// Snapshot copies the current contents into a fresh []float64. Component
// reads are individually atomic; the snapshot as a whole is not a
// consistent cut (callers that need one must quiesce the writers first).
func (v *AtomicVector) Snapshot() []float64 {
	out := make([]float64, len(v.bits))
	for i := range v.bits {
		out[i] = v.Load(i)
	}
	return out
}

// CopyInto writes the snapshot into dst, which must have the same length.
func (v *AtomicVector) CopyInto(dst []float64) {
	if len(dst) != len(v.bits) {
		panic("core: CopyInto length mismatch")
	}
	for i := range v.bits {
		dst[i] = v.Load(i)
	}
}

// SetAll stores every component of src.
func (v *AtomicVector) SetAll(src []float64) {
	if len(src) != len(v.bits) {
		panic("core: SetAll length mismatch")
	}
	for i, x := range src {
		v.Store(i, x)
	}
}
