package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// small4 builds the 4x4 test matrix
//
//	[ 4 -1  0  0]
//	[-1  4 -1  0]
//	[ 0 -1  4 -1]
//	[ 0  0 -1  4]
func small4(t *testing.T) *CSR {
	t.Helper()
	c := NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < 3 {
			c.Add(i, i+1, -1)
		}
	}
	m := c.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("small4 invalid: %v", err)
	}
	return m
}

// randomCSR builds a random square matrix with a guaranteed nonzero diagonal.
func randomCSR(rng *rand.Rand, n int, density float64) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1+rng.Float64()*4)
		for j := 0; j < n; j++ {
			if j != i && rng.Float64() < density {
				c.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return c.ToCSR()
}

func TestCOOToCSRBasic(t *testing.T) {
	m := small4(t)
	if m.NNZ() != 10 {
		t.Errorf("NNZ = %d, want 10", m.NNZ())
	}
	if got := m.At(1, 2); got != -1 {
		t.Errorf("At(1,2) = %g, want -1", got)
	}
	if got := m.At(0, 3); got != 0 {
		t.Errorf("At(0,3) = %g, want 0", got)
	}
	if got := m.At(2, 2); got != 4 {
		t.Errorf("At(2,2) = %g, want 4", got)
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2)
	c.Add(1, 1, 5)
	c.Add(0, 1, 3)
	c.Add(0, 1, -3) // cancels to zero, must be dropped
	m := c.ToCSR()
	if got := m.At(0, 0); got != 3 {
		t.Errorf("summed duplicate = %g, want 3", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 (zero-sum entry should be dropped)", m.NNZ())
	}
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestMulVec(t *testing.T) {
	m := small4(t)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	m.MulVec(y, x)
	want := []float64{2, 4, 6, 13}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestMulVecDimPanic(t *testing.T) {
	m := small4(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	m.MulVec(make([]float64, 4), make([]float64, 3))
}

func TestRowDotMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(rng, 30, 0.2)
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 30)
	m.MulVec(y, x)
	for i := 0; i < 30; i++ {
		if d := m.RowDot(i, x); math.Abs(d-y[i]) > 1e-12 {
			t.Errorf("RowDot(%d) = %g, MulVec gave %g", i, d, y[i])
		}
	}
}

func TestDiagonal(t *testing.T) {
	m := small4(t)
	d := m.Diagonal()
	for i, v := range d {
		if v != 4 {
			t.Errorf("d[%d] = %g, want 4", i, v)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomCSR(rng, 25, 0.15)
	tt := m.Transpose().Transpose()
	if err := tt.Validate(); err != nil {
		t.Fatalf("transpose-of-transpose invalid: %v", err)
	}
	if tt.NNZ() != m.NNZ() {
		t.Fatalf("NNZ changed: %d -> %d", m.NNZ(), tt.NNZ())
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := m.ColIdx[p]
			if tt.At(i, j) != m.Val[p] {
				t.Fatalf("(Aᵀ)ᵀ differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeEntries(t *testing.T) {
	c := NewCOO(2, 3)
	c.Add(0, 2, 7)
	c.Add(1, 0, -2)
	m := c.ToCSR().Transpose()
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("transpose dims %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 0) != 7 || m.At(0, 1) != -2 {
		t.Errorf("transposed entries wrong: At(2,0)=%g At(0,1)=%g", m.At(2, 0), m.At(0, 1))
	}
}

func TestIsSymmetric(t *testing.T) {
	if !small4(t).IsSymmetric(0) {
		t.Error("small4 should be symmetric")
	}
	c := NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	if c.ToCSR().IsSymmetric(0) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestAbs(t *testing.T) {
	m := small4(t).Abs()
	for _, v := range m.Val {
		if v < 0 {
			t.Fatalf("Abs left negative value %g", v)
		}
	}
	if m.At(0, 1) != 1 {
		t.Errorf("Abs At(0,1) = %g, want 1", m.At(0, 1))
	}
}

func TestJacobiIterationMatrix(t *testing.T) {
	m := small4(t)
	b, err := m.JacobiIterationMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// B = I - D^{-1}A: diagonal zero (dropped), off-diagonal 1/4.
	for i := 0; i < 4; i++ {
		if b.At(i, i) != 0 {
			t.Errorf("B diagonal at %d = %g, want 0", i, b.At(i, i))
		}
	}
	if math.Abs(b.At(0, 1)-0.25) > 1e-15 {
		t.Errorf("B(0,1) = %g, want 0.25", b.At(0, 1))
	}
}

func TestJacobiIterationMatrixZeroDiag(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(1, 1, 1)
	if _, err := c.ToCSR().JacobiIterationMatrix(); err == nil {
		t.Fatal("expected ErrZeroDiagonal")
	}
}

func TestNewSplitting(t *testing.T) {
	s, err := NewSplitting(small4(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.InvDiag {
		if math.Abs(v-0.25) > 1e-15 {
			t.Errorf("InvDiag[%d] = %g, want 0.25", i, v)
		}
	}
}

func TestDiagonalDominance(t *testing.T) {
	m := small4(t)
	dd := m.DiagonalDominance()
	// Interior rows: 4 / 2 = 2; boundary rows: 4 / 1 = 4.
	if dd[0] != 4 || dd[3] != 4 {
		t.Errorf("boundary dominance = %g,%g, want 4,4", dd[0], dd[3])
	}
	if dd[1] != 2 || dd[2] != 2 {
		t.Errorf("interior dominance = %g,%g, want 2,2", dd[1], dd[2])
	}
	if !m.IsStrictlyDiagonallyDominant() {
		t.Error("small4 should be strictly diagonally dominant")
	}
}

func TestMaxAbsRowSum(t *testing.T) {
	if got := small4(t).MaxAbsRowSum(); got != 6 {
		t.Errorf("inf norm = %g, want 6", got)
	}
}

func TestBlockPartition(t *testing.T) {
	p := NewBlockPartition(10, 3)
	if p.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", p.NumBlocks())
	}
	lo, hi := p.Bounds(3)
	if lo != 9 || hi != 10 {
		t.Errorf("last block = [%d,%d), want [9,10)", lo, hi)
	}
	for i := 0; i < 10; i++ {
		b := p.BlockOf(i)
		lo, hi := p.Bounds(b)
		if i < lo || i >= hi {
			t.Errorf("BlockOf(%d) = %d with bounds [%d,%d)", i, b, lo, hi)
		}
	}
	// Sizes sum to N.
	sum := 0
	for b := 0; b < p.NumBlocks(); b++ {
		sum += p.Size(b)
	}
	if sum != 10 {
		t.Errorf("block sizes sum to %d, want 10", sum)
	}
}

func TestBlockPartitionExact(t *testing.T) {
	p := NewBlockPartition(8, 4)
	if p.NumBlocks() != 2 || p.Size(0) != 4 || p.Size(1) != 4 {
		t.Errorf("exact partition wrong: %+v", p)
	}
}

func TestOffBlockFraction(t *testing.T) {
	// Tridiagonal: with block size 2, each 2-row block has exactly one
	// off-block coupling out of its off-diagonal entries.
	m := small4(t)
	p := NewBlockPartition(4, 2)
	f := p.OffBlockFraction(m)
	// Block 0: rows 0,1. Off-diag mass: row0: |−1|(col1,in) ; row1: |−1|(col0,in)+|−1|(col2,out).
	// total=3, out=1 -> 1/3.
	if math.Abs(f[0]-1.0/3.0) > 1e-15 {
		t.Errorf("f[0] = %g, want 1/3", f[0])
	}
	// Pure block-diagonal matrix: zero off-block fraction.
	c := NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 2)
	}
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	f2 := NewBlockPartition(4, 2).OffBlockFraction(c.ToCSR())
	if f2[0] != 0 || f2[1] != 0 {
		t.Errorf("block-diagonal off-block fraction = %v, want zeros", f2)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := small4(t)
	m.ColIdx[0] = 99
	if err := m.Validate(); err == nil {
		t.Error("expected validation failure for out-of-range column")
	}
	m = small4(t)
	m.RowPtr[1] = 0
	m.RowPtr[0] = 2
	if err := m.Validate(); err == nil {
		t.Error("expected validation failure for non-monotone RowPtr")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := small4(t)
	c := m.Clone()
	c.Val[0] = 999
	if m.Val[0] == 999 {
		t.Error("Clone shares Val storage")
	}
}

// Property: (A+Aᵀ) is symmetric for random A.
func TestPropertySymmetrization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		a := randomCSR(rng, n, 0.2)
		at := a.Transpose()
		c := NewCOO(n, n)
		for i := 0; i < n; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				c.Add(i, a.ColIdx[p], a.Val[p])
			}
			for p := at.RowPtr[i]; p < at.RowPtr[i+1]; p++ {
				c.Add(i, at.ColIdx[p], at.Val[p])
			}
		}
		return c.ToCSR().IsSymmetric(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: MulVec is linear: A(αx + y) = αAx + Ay.
func TestPropertyMulVecLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		a := randomCSR(rng, n, 0.3)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		alpha := rng.NormFloat64()
		comb := make([]float64, n)
		for i := range comb {
			comb[i] = alpha*x[i] + y[i]
		}
		lhs := make([]float64, n)
		a.MulVec(lhs, comb)
		ax := make([]float64, n)
		ay := make([]float64, n)
		a.MulVec(ax, x)
		a.MulVec(ay, y)
		for i := range lhs {
			if math.Abs(lhs[i]-(alpha*ax[i]+ay[i])) > 1e-9*(1+math.Abs(lhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: transpose preserves xᵀAy = yᵀAᵀx.
func TestPropertyTransposeBilinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		a := randomCSR(rng, n, 0.25)
		at := a.Transpose()
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		ay := make([]float64, n)
		a.MulVec(ay, y)
		atx := make([]float64, n)
		at.MulVec(atx, x)
		var lhs, rhs float64
		for i := 0; i < n; i++ {
			lhs += x[i] * ay[i]
			rhs += y[i] * atx[i]
		}
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
