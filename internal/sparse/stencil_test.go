package sparse_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mats"
	"repro/internal/sparse"
)

// anisoPoisson builds a 2-D anisotropic 5-point operator on a w×h grid:
// −eps ∂²/∂x² − ∂²/∂y² discretized row-major, so the x-neighbors carry −eps
// and the y-neighbors −1 with diagonal 2+2·eps.
func anisoPoisson(w, h int, eps float64) *sparse.CSR {
	n := w * h
	m := &sparse.CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	diag := 2 + 2*eps
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			add := func(j int, v float64) {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, v)
			}
			if y > 0 {
				add(i-w, -1)
			}
			if x > 0 {
				add(i-1, -eps)
			}
			add(i, diag)
			if x < w-1 {
				add(i+1, -eps)
			}
			if y < h-1 {
				add(i+w, -1)
			}
			m.RowPtr[i+1] = len(m.ColIdx)
		}
	}
	return m
}

func TestDetectStencilGridOperators(t *testing.T) {
	cases := []struct {
		name     string
		a        *sparse.CSR
		width    int // stencil points
		interior int // exact interior-row count
	}{
		{"fv_12x10", mats.FV(12, 10, 1.368), 9, 10 * 8},
		{"poisson_9x7", mats.Poisson2D(9, 7), 5, 7 * 5},
		{"s1rmt3m1_60", mats.S1RMT3M1(60), 9, 60 - 8},
	}
	for _, c := range cases {
		si, ok := sparse.DetectStencil(c.a)
		if !ok {
			t.Fatalf("%s: stencil not detected", c.name)
		}
		if len(si.Spec.Offsets) != c.width {
			t.Fatalf("%s: want %d-point stencil, got offsets %v", c.name, c.width, si.Spec.Offsets)
		}
		if si.InteriorRows != c.interior {
			t.Errorf("%s: interior rows = %d, want %d (boundary %d)",
				c.name, si.InteriorRows, c.interior, si.BoundaryRows)
		}
		if si.InteriorRows+si.BoundaryRows != c.a.Rows {
			t.Errorf("%s: classes don't partition the rows", c.name)
		}
	}
}

func TestDetectStencilOneByOne(t *testing.T) {
	a := mats.Poisson2D(1, 1)
	si, ok := sparse.DetectStencil(a)
	if !ok {
		t.Fatal("1x1 grid: stencil not detected")
	}
	if len(si.Spec.Offsets) != 1 || si.Spec.Offsets[0] != 0 {
		t.Fatalf("1x1 grid: offsets = %v, want [0]", si.Spec.Offsets)
	}
	if si.InteriorRows != 1 || si.BoundaryRows != 0 {
		t.Fatalf("1x1 grid: interior/boundary = %d/%d, want 1/0", si.InteriorRows, si.BoundaryRows)
	}
}

func TestDetectStencilAnisotropic(t *testing.T) {
	a := anisoPoisson(11, 9, 0.01)
	si, ok := sparse.DetectStencil(a)
	if !ok {
		t.Fatal("anisotropic 5-point: stencil not detected")
	}
	wantOff := []int{-11, -1, 0, 1, 11}
	wantCoef := []float64{-1, -0.01, 2.02, -0.01, -1}
	for p := range wantOff {
		if si.Spec.Offsets[p] != wantOff[p] {
			t.Fatalf("offsets = %v, want %v", si.Spec.Offsets, wantOff)
		}
		if math.Float64bits(si.Spec.Coeffs[p]) != math.Float64bits(wantCoef[p]) {
			t.Fatalf("coeffs = %v, want %v (bitwise)", si.Spec.Coeffs, wantCoef)
		}
	}
	if si.InteriorRows != 9*7 {
		t.Fatalf("interior rows = %d, want %d", si.InteriorRows, 9*7)
	}
}

func TestDetectStencilRejectsVaryingCoefficients(t *testing.T) {
	for _, c := range []struct {
		name string
		a    *sparse.CSR
	}{
		{"trefethen_80", mats.Trefethen(80)},
		{"chem97ztz_60", mats.Chem97ZtZ(60)},
	} {
		if si, ok := sparse.DetectStencil(c.a); ok {
			t.Errorf("%s: detected a stencil (interior %d/%d) but coefficients vary per row",
				c.name, si.InteriorRows, c.a.Rows)
		}
	}
}

// TestStencilPerturbedRowDemotes is the almost-a-stencil property test: for
// random grids and a random single perturbed coefficient, detection must
// still succeed (the remaining rows carry it) while the perturbed row —
// and only that row — demotes from interior to boundary, where the solve
// kernels fall back to CSR.
func TestStencilPerturbedRowDemotes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		w := 5 + rng.Intn(8)
		h := 5 + rng.Intn(8)
		a := mats.Poisson2D(w, h)
		clean, ok := sparse.DetectStencil(a)
		if !ok {
			t.Fatalf("trial %d: clean %dx%d Poisson grid must detect", trial, w, h)
		}

		// Perturb one stored coefficient of one random interior row.
		var interior []int
		for i, in := range clean.Interior {
			if in {
				interior = append(interior, i)
			}
		}
		row := interior[rng.Intn(len(interior))]
		p := a.RowPtr[row] + rng.Intn(a.RowPtr[row+1]-a.RowPtr[row])
		a.Val[p] += 1e-9 + rng.Float64()

		si, ok := sparse.DetectStencil(a)
		if !ok {
			t.Fatalf("trial %d: one perturbed row (%d) must not defeat detection on %dx%d",
				trial, row, w, h)
		}
		if si.Interior[row] {
			t.Fatalf("trial %d: perturbed row %d still classified interior", trial, row)
		}
		if si.InteriorRows != clean.InteriorRows-1 {
			t.Fatalf("trial %d: interior rows %d, want %d (exactly the perturbed row demoted)",
				trial, si.InteriorRows, clean.InteriorRows-1)
		}
		for i := range si.Interior {
			if i != row && si.Interior[i] != clean.Interior[i] {
				t.Fatalf("trial %d: row %d changed class but was not perturbed", trial, i)
			}
		}
	}
}

func TestMatchStencilDeclaredSpec(t *testing.T) {
	a := mats.Poisson2D(6, 6)
	spec := sparse.StencilSpec{Offsets: []int{-6, -1, 0, 1, 6}, Coeffs: []float64{-1, -1, 4, -1, -1}}
	si, err := sparse.MatchStencil(a, spec)
	if err != nil {
		t.Fatal(err)
	}
	if si.InteriorRows != 4*4 {
		t.Fatalf("interior rows = %d, want 16", si.InteriorRows)
	}

	// A spec that matches nothing is not an error; the info reports it.
	off := sparse.StencilSpec{Offsets: []int{-1, 0, 1}, Coeffs: []float64{-2, 5, -2}}
	si, err = sparse.MatchStencil(a, off)
	if err != nil {
		t.Fatal(err)
	}
	if si.InteriorRows != 0 {
		t.Fatalf("mismatched spec matched %d rows", si.InteriorRows)
	}

	// Invalid specs are errors.
	for _, bad := range []sparse.StencilSpec{
		{},
		{Offsets: []int{-1, 1}, Coeffs: []float64{1, 1}},          // no diagonal
		{Offsets: []int{0, 0}, Coeffs: []float64{1, 1}},           // not ascending
		{Offsets: []int{0}, Coeffs: []float64{0}},                 // zero diagonal
		{Offsets: []int{0, 1}, Coeffs: []float64{1}},              // length mismatch
		{Offsets: []int{1, 0}, Coeffs: []float64{1, 1}},           // descending
		{Offsets: []int{-1, 0, 1}, Coeffs: []float64{1, 1, 1, 1}}, // length mismatch
	} {
		if _, err := sparse.MatchStencil(a, bad); err == nil {
			t.Errorf("spec %+v: want error", bad)
		}
	}
}
