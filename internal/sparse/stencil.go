package sparse

import (
	"fmt"
	"math"
	"sort"
)

// StencilSpec declares a constant-coefficient stencil: row i of the matrix
// couples to columns i+Offsets[p] with the fixed coefficients Coeffs[p],
// independent of i. The fv and Poisson generators in internal/mats produce
// exactly this structure (a 9-point and a 5-point stencil), s1rmt3m1 is a
// 1-D band stencil; for such operators a sweep kernel can keep the whole
// stencil in registers and never load a column index (see internal/core and
// docs/KERNELS.md).
//
// Offsets must be strictly ascending and include 0 (the diagonal); Coeffs
// is parallel to Offsets and the diagonal coefficient must be nonzero.
type StencilSpec struct {
	Offsets []int
	Coeffs  []float64
}

// Validate checks the structural invariants of the spec.
func (s StencilSpec) Validate() error {
	if len(s.Offsets) == 0 {
		return fmt.Errorf("sparse: empty stencil spec")
	}
	if len(s.Offsets) != len(s.Coeffs) {
		return fmt.Errorf("sparse: stencil spec has %d offsets but %d coefficients",
			len(s.Offsets), len(s.Coeffs))
	}
	hasDiag := false
	for p, d := range s.Offsets {
		if p > 0 && s.Offsets[p-1] >= d {
			return fmt.Errorf("sparse: stencil offsets must be strictly ascending, have %v", s.Offsets)
		}
		if d == 0 {
			hasDiag = true
			if s.Coeffs[p] == 0 {
				return fmt.Errorf("sparse: stencil diagonal coefficient must be nonzero")
			}
		}
	}
	if !hasDiag {
		return fmt.Errorf("sparse: stencil spec must include offset 0 (the diagonal), have %v", s.Offsets)
	}
	return nil
}

// DiagIndex returns the position of offset 0 in the spec. The spec must be
// valid.
func (s StencilSpec) DiagIndex() int {
	return sort.SearchInts(s.Offsets, 0)
}

// Clone returns a deep copy of the spec.
func (s StencilSpec) Clone() StencilSpec {
	return StencilSpec{
		Offsets: append([]int(nil), s.Offsets...),
		Coeffs:  append([]float64(nil), s.Coeffs...),
	}
}

// StencilInfo is the result of matching a matrix against a StencilSpec:
// the per-row classification into interior rows — rows that are exactly the
// stencil, bitwise, with every offset in range — and boundary rows
// (everything else: truncated stencils at the domain edge, perturbed
// coefficients, different sparsity). Interior rows are eligible for the
// matrix-free fast path; boundary rows fall back to CSR.
type StencilInfo struct {
	Spec StencilSpec
	// Interior[i] reports whether row i matches the stencil exactly.
	Interior []bool
	// InteriorRows and BoundaryRows count the two classes.
	InteriorRows, BoundaryRows int
}

// InteriorFraction returns the share of rows on the fast path.
func (si *StencilInfo) InteriorFraction() float64 {
	n := si.InteriorRows + si.BoundaryRows
	if n == 0 {
		return 0
	}
	return float64(si.InteriorRows) / float64(n)
}

// MatchStencil classifies every row of a against the declared spec. A row
// is interior iff its stored entries are exactly (i+Offsets[p], Coeffs[p])
// for all p — positional comparison (CSR columns are sorted), coefficients
// compared bitwise so the classification never conflates values that would
// round differently. The error reports an invalid spec or a non-square
// matrix; a spec that matches zero rows is not an error (the info says so).
func MatchStencil(a *CSR, spec StencilSpec) (*StencilInfo, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: stencil matching needs a square matrix, have %dx%d", a.Rows, a.Cols)
	}
	si := &StencilInfo{Spec: spec.Clone(), Interior: make([]bool, a.Rows)}
	q := len(spec.Offsets)
	for i := 0; i < a.Rows; i++ {
		rs, re := a.RowPtr[i], a.RowPtr[i+1]
		if re-rs != q {
			si.BoundaryRows++
			continue
		}
		ok := true
		for p := 0; p < q; p++ {
			if a.ColIdx[rs+p] != i+spec.Offsets[p] ||
				math.Float64bits(a.Val[rs+p]) != math.Float64bits(spec.Coeffs[p]) {
				ok = false
				break
			}
		}
		if ok {
			si.Interior[i] = true
			si.InteriorRows++
		} else {
			si.BoundaryRows++
		}
	}
	return si, nil
}

// DetectStencil infers a constant-coefficient stencil from the matrix
// itself: rows of maximal length propose candidate (offset, coefficient)
// patterns — the first, a middle and the last such row, so one locally
// perturbed row cannot poison detection — and the matrix accepts the best
// candidate when at least a quarter of the rows, and at least one, match it
// exactly. Grid operators from internal/mats (FV row-major, Poisson2D,
// S1RMT3M1) detect in full; FVTiled detects partially (tile-interior rows
// keep constant offsets under the tile permutation, tile-edge rows demote
// to boundary); matrices with row-varying coefficients (Trefethen,
// Chem97ZtZ) do not detect. The quarter threshold keeps the fast path
// worthwhile: below it the boundary fallback dominates and packed CSR is
// the better kernel.
func DetectStencil(a *CSR) (*StencilInfo, bool) {
	if a.Rows == 0 || a.Rows != a.Cols {
		return nil, false
	}
	width := 0
	for i := 0; i < a.Rows; i++ {
		if w := a.RowPtr[i+1] - a.RowPtr[i]; w > width {
			width = w
		}
	}
	if width == 0 {
		return nil, false // all rows empty
	}
	var maxRows []int
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i+1]-a.RowPtr[i] == width {
			maxRows = append(maxRows, i)
		}
	}
	cands := []int{maxRows[0], maxRows[len(maxRows)/2], maxRows[len(maxRows)-1]}
	var best *StencilInfo
	for ci, cand := range cands {
		if ci > 0 && cand == cands[ci-1] {
			continue
		}
		rs := a.RowPtr[cand]
		spec := StencilSpec{
			Offsets: make([]int, width),
			Coeffs:  make([]float64, width),
		}
		for p := 0; p < width; p++ {
			spec.Offsets[p] = a.ColIdx[rs+p] - cand
			spec.Coeffs[p] = a.Val[rs+p]
		}
		if spec.Validate() != nil {
			continue // no diagonal, or a zero diagonal coefficient
		}
		si, err := MatchStencil(a, spec)
		if err != nil {
			continue
		}
		if best == nil || si.InteriorRows > best.InteriorRows {
			best = si
		}
	}
	if best == nil || best.InteriorRows < 1 || 4*best.InteriorRows < a.Rows {
		return nil, false
	}
	return best, true
}
