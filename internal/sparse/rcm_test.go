package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// pathGraph builds a 1-D chain matrix with scrambled vertex labels.
func scrambledPath(n int, seed int64) (*CSR, []int) {
	rng := rand.New(rand.NewSource(seed))
	label := rng.Perm(n)
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(label[i], label[i], 2)
		if i+1 < n {
			c.AddSym(label[i], label[i+1], -1)
		}
	}
	return c.ToCSR(), label
}

func TestRCMRecoversPathBandwidth(t *testing.T) {
	a, _ := scrambledPath(50, 3)
	if bw := Bandwidth(a); bw < 10 {
		t.Fatalf("scrambled path should start with large bandwidth, got %d", bw)
	}
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PermuteSym(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	// A path renumbered by RCM has bandwidth exactly 1.
	if bw := Bandwidth(p); bw != 1 {
		t.Errorf("RCM bandwidth = %d, want 1 for a path", bw)
	}
}

func TestRCMIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSR(rng, 60, 0.1)
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			t.Fatalf("invalid permutation: %v", perm)
		}
		seen[v] = true
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two separate triangles plus two isolated vertices.
	c := NewCOO(8, 8)
	for i := 0; i < 8; i++ {
		c.Add(i, i, 1)
	}
	tri := func(a, b, d int) {
		c.AddSym(a, b, -1)
		c.AddSym(b, d, -1)
		c.AddSym(a, d, -1)
	}
	tri(0, 3, 6)
	tri(1, 4, 7)
	a := c.ToCSR()
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PermuteSym(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Each triangle must end up contiguous: bandwidth 2.
	if bw := Bandwidth(p); bw != 2 {
		t.Errorf("bandwidth = %d, want 2 (contiguous triangles)", bw)
	}
}

func TestRCMRejectsRectangular(t *testing.T) {
	c := NewCOO(2, 3)
	c.Add(0, 0, 1)
	if _, err := RCM(c.ToCSR()); err == nil {
		t.Error("expected error for rectangular input")
	}
}

func TestBandwidth(t *testing.T) {
	c := NewCOO(5, 5)
	c.Add(0, 0, 1)
	c.Add(0, 4, 1)
	if bw := Bandwidth(c.ToCSR()); bw != 4 {
		t.Errorf("bandwidth = %d, want 4", bw)
	}
}

func TestPermuteSymValidation(t *testing.T) {
	a, _ := scrambledPath(4, 1)
	if _, err := PermuteSym(a, []int{0, 1}); err == nil {
		t.Error("expected length error")
	}
	if _, err := PermuteSym(a, []int{0, 1, 2, 2}); err == nil {
		t.Error("expected duplicate error")
	}
	if _, err := PermuteSym(a, []int{0, 1, 2, 9}); err == nil {
		t.Error("expected range error")
	}
	rect := NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, err := PermuteSym(rect.ToCSR(), []int{0, 1}); err == nil {
		t.Error("expected square error")
	}
}

// Property: RCM never increases the bandwidth of an already-banded chain,
// and the permuted matrix keeps the spectrum-relevant invariants (symmetry,
// diagonal multiset).
func TestPropertyRCMBandedStaysBanded(t *testing.T) {
	f := func(seed int64) bool {
		n := 20 + int(seed%30+30)%30
		a, _ := scrambledPath(n, seed)
		perm, err := RCM(a)
		if err != nil {
			return false
		}
		p, err := PermuteSym(a, perm)
		if err != nil {
			return false
		}
		return p.IsSymmetric(0) && Bandwidth(p) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
