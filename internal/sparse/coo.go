package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix builder. Entries may be added in
// any order; duplicates are summed when converting to CSR. COO is the
// assembly format — generators and the Matrix Market reader build a COO and
// convert once.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewCOO creates an empty COO matrix of the given dimensions.
func NewCOO(rows, cols int) *COO {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: NewCOO(%d, %d): dimensions must be positive", rows, cols))
	}
	return &COO{Rows: rows, Cols: cols}
}

// Add appends the entry (i, j, v). Zero values are kept (they are dropped,
// after duplicate summation, by ToCSR). It panics on out-of-range indices so
// assembly bugs surface at the insertion site.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO.Add(%d,%d) out of range for %dx%d matrix", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// AddSym appends (i, j, v) and, if i != j, also (j, i, v). Convenient for
// assembling symmetric matrices from their lower triangles.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of (not yet deduplicated) entries.
func (c *COO) NNZ() int { return len(c.V) }

// ToCSR converts to CSR: entries are sorted by (row, col), duplicates are
// summed, and entries that sum exactly to zero are dropped.
func (c *COO) ToCSR() *CSR {
	type ent struct {
		i, j int
		v    float64
	}
	ents := make([]ent, len(c.V))
	for k := range c.V {
		ents[k] = ent{c.I[k], c.J[k], c.V[k]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].i != ents[b].i {
			return ents[a].i < ents[b].i
		}
		return ents[a].j < ents[b].j
	})

	m := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int, c.Rows+1)}
	k := 0
	for k < len(ents) {
		i, j := ents[k].i, ents[k].j
		v := ents[k].v
		k++
		for k < len(ents) && ents[k].i == i && ents[k].j == j {
			v += ents[k].v
			k++
		}
		if v != 0 {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, v)
			m.RowPtr[i+1]++
		}
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}
