package sparse

import (
	"fmt"
	"io"
	"strings"
)

// Spy renders an ASCII sparsity plot of the matrix (the library's analog of
// the paper's Figure 1). The matrix is downsampled onto a width×height
// character grid; a cell prints as a density character ('.' sparse through
// '@' dense) when any nonzero maps into it.
func Spy(w io.Writer, m *CSR, width, height int) error {
	if width <= 0 || height <= 0 {
		return fmt.Errorf("sparse: Spy grid %dx%d must be positive", width, height)
	}
	if width > m.Cols {
		width = m.Cols
	}
	if height > m.Rows {
		height = m.Rows
	}
	counts := make([][]int, height)
	for i := range counts {
		counts[i] = make([]int, width)
	}
	for i := 0; i < m.Rows; i++ {
		gi := i * height / m.Rows
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			gj := m.ColIdx[p] * width / m.Cols
			counts[gi][gj]++
		}
	}
	// Cell capacity: matrix entries that can map to one cell.
	cap := (m.Rows/height + 1) * (m.Cols/width + 1)
	ramp := []byte(".:-=+*#%@")
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for gi := 0; gi < height; gi++ {
		sb.WriteByte('|')
		for gj := 0; gj < width; gj++ {
			c := counts[gi][gj]
			if c == 0 {
				sb.WriteByte(' ')
				continue
			}
			idx := c * len(ramp) / (cap + 1)
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// SpyPGM writes a binary PGM (P5) image of the sparsity pattern: the
// matrix is downsampled onto a width×height pixel grid; darker pixels mean
// denser cells. PGM is chosen because it needs no image libraries and any
// viewer opens it — the closest stdlib-only analog of the paper's
// Figure 1 renderings.
func SpyPGM(w io.Writer, m *CSR, width, height int) error {
	if width <= 0 || height <= 0 {
		return fmt.Errorf("sparse: SpyPGM grid %dx%d must be positive", width, height)
	}
	if width > m.Cols {
		width = m.Cols
	}
	if height > m.Rows {
		height = m.Rows
	}
	counts := make([]int, width*height)
	maxCount := 0
	for i := 0; i < m.Rows; i++ {
		gi := i * height / m.Rows
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			gj := m.ColIdx[p] * width / m.Cols
			counts[gi*width+gj]++
			if counts[gi*width+gj] > maxCount {
				maxCount = counts[gi*width+gj]
			}
		}
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	pix := make([]byte, width*height)
	for k, c := range counts {
		if c == 0 {
			pix[k] = 255 // white background
			continue
		}
		// Log-ish shading: any nonzero is clearly visible.
		v := 200 - 200*c/maxCount
		pix[k] = byte(v)
	}
	_, err := w.Write(pix)
	return err
}
