package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// corpusMatrix renders a small matrix to Matrix Market text for the seed
// corpus (generated here rather than committed as testdata so the corpus
// always matches the writer).
func corpusMatrix() string {
	c := NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.Add(i, i-1, -1)
			c.Add(i-1, i, -1)
		}
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, c.ToCSR()); err != nil {
		panic(err)
	}
	return buf.String()
}

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add(corpusMatrix())
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.5\n2 2 -1e-3\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n% comment\n\n3 3 2\n2 1 1.0\n3 3 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	// Hostile shapes the parser must reject without allocating for them.
	f.Add("%%MatrixMarket matrix coordinate real general\n1000000000 1000000000 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 -5\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
	f.Add("")
	f.Add("%%MatrixMarket")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n")

	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		// On success the CSR invariants must hold: otherwise downstream
		// code (partitioning, kernels) indexes out of range.
		if a.Rows <= 0 || a.Cols <= 0 || a.Rows > maxMMDim || a.Cols > maxMMDim {
			t.Fatalf("accepted matrix with dimensions %dx%d", a.Rows, a.Cols)
		}
		if len(a.RowPtr) != a.Rows+1 || a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != len(a.Val) {
			t.Fatalf("broken row pointers: len=%d rows=%d last=%d nnz=%d",
				len(a.RowPtr), a.Rows, a.RowPtr[a.Rows], len(a.Val))
		}
		if len(a.ColIdx) != len(a.Val) {
			t.Fatalf("colidx/val length mismatch: %d vs %d", len(a.ColIdx), len(a.Val))
		}
		for i := 0; i < a.Rows; i++ {
			if a.RowPtr[i] > a.RowPtr[i+1] {
				t.Fatalf("row %d: non-monotone row pointers", i)
			}
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				if a.ColIdx[p] < 0 || a.ColIdx[p] >= a.Cols {
					t.Fatalf("row %d: column %d out of range [0,%d)", i, a.ColIdx[p], a.Cols)
				}
			}
		}
		// A parsed matrix must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatalf("write-back of accepted matrix failed: %v", err)
		}
		if _, err := ReadMatrixMarket(&buf); err != nil {
			t.Fatalf("round trip of accepted matrix failed: %v", err)
		}
	})
}

func TestReadMatrixMarketRejectsHostileSizeLines(t *testing.T) {
	for _, tc := range []struct{ name, input string }{
		{"huge-dims", "%%MatrixMarket matrix coordinate real general\n1000000000 1000000000 0\n"},
		{"huge-cols", "%%MatrixMarket matrix coordinate real general\n2 999999999 0\n"},
		{"negative-nnz", "%%MatrixMarket matrix coordinate real general\n2 2 -5\n"},
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The bound itself is generous: a paper-scale matrix passes.
	ok := "%%MatrixMarket matrix coordinate real general\n20000 20000 1\n1 1 1.0\n"
	if _, err := ReadMatrixMarket(strings.NewReader(ok)); err != nil {
		t.Fatalf("paper-scale matrix rejected: %v", err)
	}
}
