package sparse

import (
	"fmt"
)

// ELL is a sparse matrix in ELLPACK format: every row stores exactly
// MaxRowNNZ (column, value) slots, padded with sentinel columns. This is
// the classical GPU SpMV layout of the paper's era (MAGMA's kernels use
// ELLPACK-style formats): the fixed row width gives coalesced,
// divergence-free access on SIMT hardware — at the cost of padding, which
// is why it suits stencil-like matrices (fv family) and wastes memory on
// skewed ones (Trefethen's first rows).
//
// Storage is column-major across rows (slot-major), the GPU-friendly
// transposed layout: slot s of row i lives at index s*Rows+i.
type ELL struct {
	Rows, Cols int
	MaxRowNNZ  int
	ColIdx     []int32 // len Rows*MaxRowNNZ; -1 marks padding
	Val        []float64
}

// ToELL converts a CSR matrix to ELLPACK. It returns an error if the
// matrix is empty of rows; zero-row matrices are not meaningful here.
func ToELL(a *CSR) (*ELL, error) {
	if a.Rows == 0 {
		return nil, fmt.Errorf("sparse: ToELL of empty matrix")
	}
	maxNNZ := 0
	for i := 0; i < a.Rows; i++ {
		if w := a.RowPtr[i+1] - a.RowPtr[i]; w > maxNNZ {
			maxNNZ = w
		}
	}
	if maxNNZ == 0 {
		maxNNZ = 1 // keep slot arithmetic valid for an all-zero matrix
	}
	e := &ELL{
		Rows:      a.Rows,
		Cols:      a.Cols,
		MaxRowNNZ: maxNNZ,
		ColIdx:    make([]int32, a.Rows*maxNNZ),
		Val:       make([]float64, a.Rows*maxNNZ),
	}
	for k := range e.ColIdx {
		e.ColIdx[k] = -1
	}
	for i := 0; i < a.Rows; i++ {
		s := 0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			idx := s*a.Rows + i
			e.ColIdx[idx] = int32(a.ColIdx[p])
			e.Val[idx] = a.Val[p]
			s++
		}
	}
	return e, nil
}

// NNZ returns the number of stored (non-padding) entries.
func (e *ELL) NNZ() int {
	n := 0
	for _, c := range e.ColIdx {
		if c >= 0 {
			n++
		}
	}
	return n
}

// PaddingRatio returns padded slots / total slots — the format's memory
// overhead (0 for perfectly uniform rows).
func (e *ELL) PaddingRatio() float64 {
	total := len(e.ColIdx)
	if total == 0 {
		return 0
	}
	return float64(total-e.NNZ()) / float64(total)
}

// MulVec computes y = A*x using the slot-major traversal a GPU warp would
// perform (one pass per slot, contiguous row access).
func (e *ELL) MulVec(y, x []float64) {
	if len(x) != e.Cols || len(y) != e.Rows {
		panic(fmt.Sprintf("sparse: ELL.MulVec dims: A is %dx%d, len(x)=%d, len(y)=%d",
			e.Rows, e.Cols, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for s := 0; s < e.MaxRowNNZ; s++ {
		base := s * e.Rows
		for i := 0; i < e.Rows; i++ {
			c := e.ColIdx[base+i]
			if c >= 0 {
				y[i] += e.Val[base+i] * x[c]
			}
		}
	}
}

// ToCSR converts back to CSR (padding dropped, columns sorted by
// construction since CSR rows were sorted when converting in; a general
// ELL is re-sorted via COO).
func (e *ELL) ToCSR() *CSR {
	c := NewCOO(e.Rows, e.Cols)
	for s := 0; s < e.MaxRowNNZ; s++ {
		base := s * e.Rows
		for i := 0; i < e.Rows; i++ {
			if col := e.ColIdx[base+i]; col >= 0 {
				c.Add(i, int(col), e.Val[base+i])
			}
		}
	}
	return c.ToCSR()
}
