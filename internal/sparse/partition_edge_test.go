package sparse

import (
	"errors"
	"testing"
)

// TestBlockPartitionEdgeCases pins the partition geometry on the awkward
// shapes the solver must handle: sizes not divisible by the block size
// (ragged last block, down to a single row), a single block covering
// everything, and the degenerate one-row system.
func TestBlockPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		n, bs      int
		wantBlocks int
		wantSizes  []int
	}{
		{"ragged last block", 10, 4, 3, []int{4, 4, 2}},
		{"last block of one row", 9, 4, 3, []int{4, 4, 1}},
		{"single block exact", 8, 8, 1, []int{8}},
		{"single block oversized", 5, 100, 1, []int{5}},
		{"one row", 1, 1, 1, []int{1}},
		{"one row big block", 1, 64, 1, []int{1}},
		{"block size one", 4, 1, 4, []int{1, 1, 1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewBlockPartition(c.n, c.bs)
			if p.NumBlocks() != c.wantBlocks {
				t.Fatalf("NumBlocks() = %d, want %d", p.NumBlocks(), c.wantBlocks)
			}
			if p.N != c.n {
				t.Errorf("N = %d, want %d", p.N, c.n)
			}
			for b, want := range c.wantSizes {
				if got := p.Size(b); got != want {
					t.Errorf("Size(%d) = %d, want %d", b, got, want)
				}
			}
			// Bounds tile [0, n) exactly: contiguous, no overlap, no gap.
			prevEnd := 0
			for b := 0; b < p.NumBlocks(); b++ {
				lo, hi := p.Bounds(b)
				if lo != prevEnd || hi <= lo {
					t.Errorf("Bounds(%d) = [%d,%d), want contiguous from %d", b, lo, hi, prevEnd)
				}
				prevEnd = hi
			}
			if prevEnd != c.n {
				t.Errorf("blocks end at %d, want %d", prevEnd, c.n)
			}
			// BlockOf agrees with the bounds for every row, including the
			// block boundaries themselves.
			for i := 0; i < c.n; i++ {
				b := p.BlockOf(i)
				lo, hi := p.Bounds(b)
				if i < lo || i >= hi {
					t.Errorf("BlockOf(%d) = %d with bounds [%d,%d)", i, b, lo, hi)
				}
			}
		})
	}
}

func TestBlockPartitionPanicsOnBadInput(t *testing.T) {
	for _, c := range []struct{ n, bs int }{{0, 4}, {-1, 4}, {4, 0}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBlockPartition(%d, %d) did not panic", c.n, c.bs)
				}
			}()
			NewBlockPartition(c.n, c.bs)
		}()
	}
}

// emptyRowMatrix is diagonally dominant except row `empty`, which has no
// stored entries at all (so its diagonal is structurally zero).
func emptyRowMatrix(n, empty int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		if i == empty {
			continue
		}
		c.Add(i, i, 4)
		if i > 0 && i-1 != empty {
			c.Add(i, i-1, -1)
		}
		if i < n-1 && i+1 != empty {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// TestEmptyRowZeroDiagonal pins the error contract for a matrix with an
// empty row: every diagonal-dependent construction reports
// ErrZeroDiagonal (wrapped, so errors.Is works) naming that row.
func TestEmptyRowZeroDiagonal(t *testing.T) {
	a := emptyRowMatrix(6, 3)
	if _, err := NewSplitting(a); !errors.Is(err, ErrZeroDiagonal) {
		t.Errorf("NewSplitting on empty row: err = %v, want ErrZeroDiagonal", err)
	}
	if _, err := a.JacobiIterationMatrix(); !errors.Is(err, ErrZeroDiagonal) {
		t.Errorf("JacobiIterationMatrix on empty row: err = %v, want ErrZeroDiagonal", err)
	}
}

// TestOffBlockFractionEmptyRows checks the off-block mass statistic is
// well-defined (zero, not NaN) for blocks whose rows carry no
// off-diagonal entries — including fully empty rows.
func TestOffBlockFractionEmptyRows(t *testing.T) {
	// 4 rows, block size 2: block 0 has only diagonal entries, block 1
	// contains an empty row and one row coupling outside the block.
	c := NewCOO(4, 4)
	c.Add(0, 0, 2)
	c.Add(1, 1, 2)
	c.Add(3, 3, 2)
	c.Add(3, 0, -1) // off-block for block 1
	f := NewBlockPartition(4, 2).OffBlockFraction(c.ToCSR())
	if f[0] != 0 {
		t.Errorf("diagonal-only block: fraction = %g, want 0", f[0])
	}
	if f[1] != 1 {
		t.Errorf("block with only off-block coupling: fraction = %g, want 1", f[1])
	}
	// A fully empty matrix must not divide by zero.
	for b, v := range NewBlockPartition(3, 2).OffBlockFraction(NewCOO(3, 3).ToCSR()) {
		if v != 0 {
			t.Errorf("empty matrix block %d: fraction = %g, want 0", b, v)
		}
	}
}
