package sparse

import (
	"fmt"
	"sort"
)

// RCM computes the reverse Cuthill–McKee ordering of the matrix's
// undirected adjacency graph (the structural pattern of A+Aᵀ, ignoring the
// diagonal) and returns it as a permutation suitable for PermuteSym:
// perm[old] = new. RCM clusters connected vertices, reducing bandwidth —
// the remedy the paper suggests (§4.3) for systems like Chem97ZtZ whose
// natural ordering leaves the block-local submatrices diagonal and the
// local iterations of async-(k) useless.
//
// Each connected component is traversed breadth-first from a
// pseudo-peripheral vertex (found by the usual level-structure doubling),
// with neighbours visited in order of increasing degree, and the final
// ordering is reversed.
func RCM(a *CSR) ([]int, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: RCM requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	adj, deg := symmetricAdjacency(a)

	visited := make([]bool, n)
	order := make([]int, 0, n) // Cuthill–McKee order (to be reversed)
	var queue []int

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(start, adj, deg)
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := make([]int, 0, len(adj[v]))
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			sort.Slice(nbrs, func(i, j int) bool {
				if deg[nbrs[i]] != deg[nbrs[j]] {
					return deg[nbrs[i]] < deg[nbrs[j]]
				}
				return nbrs[i] < nbrs[j] // deterministic tiebreak
			})
			queue = append(queue, nbrs...)
		}
	}

	// Reverse, and convert "new position k holds old vertex order[k]" into
	// perm[old] = new.
	perm := make([]int, n)
	for k, v := range order {
		perm[v] = n - 1 - k
	}
	return perm, nil
}

// symmetricAdjacency builds the undirected adjacency lists of A+Aᵀ
// (diagonal excluded) plus vertex degrees.
func symmetricAdjacency(a *CSR) ([][]int, []int) {
	n := a.Rows
	adj := make([][]int, n)
	add := func(i, j int) {
		adj[i] = append(adj[i], j)
	}
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			if j != i {
				add(i, j)
				add(j, i)
			}
		}
	}
	deg := make([]int, n)
	for i := range adj {
		// Deduplicate (A and Aᵀ may both contribute the same edge).
		sort.Ints(adj[i])
		k := 0
		for _, w := range adj[i] {
			if k == 0 || adj[i][k-1] != w {
				adj[i][k] = w
				k++
			}
		}
		adj[i] = adj[i][:k]
		deg[i] = k
	}
	return adj, deg
}

// pseudoPeripheral finds an approximately peripheral vertex of start's
// component: repeatedly BFS to the farthest level and restart from its
// minimum-degree vertex until the eccentricity stops growing.
func pseudoPeripheral(start int, adj [][]int, deg []int) int {
	root := start
	prevEcc := -1
	dist := make(map[int]int)
	for {
		// BFS level structure from root.
		for k := range dist {
			delete(dist, k)
		}
		dist[root] = 0
		queue := []int{root}
		ecc := 0
		far := root
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if _, ok := dist[w]; !ok {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
					if dist[w] > ecc || (dist[w] == ecc && deg[w] < deg[far]) {
						ecc = dist[w]
						far = w
					}
				}
			}
		}
		if ecc <= prevEcc {
			return root
		}
		prevEcc = ecc
		root = far
	}
}

// Bandwidth returns max |i−j| over the stored entries of A — the quantity
// RCM minimizes heuristically.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d := i - a.ColIdx[p]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
