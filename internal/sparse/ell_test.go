package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToELLBasic(t *testing.T) {
	m := small4(t)
	e, err := ToELL(m)
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxRowNNZ != 3 {
		t.Errorf("MaxRowNNZ = %d, want 3", e.MaxRowNNZ)
	}
	if e.NNZ() != m.NNZ() {
		t.Errorf("NNZ = %d, want %d", e.NNZ(), m.NNZ())
	}
	// Boundary rows have 2 entries, interior 3: padding = 2 of 12 slots.
	if got := e.PaddingRatio(); math.Abs(got-2.0/12.0) > 1e-15 {
		t.Errorf("PaddingRatio = %g, want 1/6", got)
	}
}

func TestELLMulVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(60)
		a := randomCSR(rng, n, 0.15)
		e, err := ToELL(a)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		a.MulVec(y1, x)
		e.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12*(1+math.Abs(y1[i])) {
				t.Fatalf("trial %d: SpMV mismatch at %d: %g vs %g", trial, i, y1[i], y2[i])
			}
		}
	}
}

func TestELLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomCSR(rng, 40, 0.2)
	e, err := ToELL(a)
	if err != nil {
		t.Fatal(err)
	}
	back := e.ToCSR()
	if back.NNZ() != a.NNZ() {
		t.Fatalf("round-trip NNZ %d -> %d", a.NNZ(), back.NNZ())
	}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if back.At(i, a.ColIdx[p]) != a.Val[p] {
				t.Fatalf("round-trip mismatch at (%d,%d)", i, a.ColIdx[p])
			}
		}
	}
}

func TestELLEmptyAndEdge(t *testing.T) {
	if _, err := ToELL(&CSR{RowPtr: []int{0}}); err == nil {
		t.Error("expected error for zero-row matrix")
	}
	// All-zero matrix: valid, one padded slot per row.
	c := NewCOO(3, 3)
	c.Add(0, 0, 0) // dropped by ToCSR
	z := c.ToCSR()
	e, err := ToELL(z)
	if err != nil {
		t.Fatal(err)
	}
	if e.NNZ() != 0 || e.MaxRowNNZ != 1 {
		t.Errorf("zero matrix ELL: nnz=%d width=%d", e.NNZ(), e.MaxRowNNZ)
	}
	y := make([]float64, 3)
	e.MulVec(y, []float64{1, 2, 3})
	for _, v := range y {
		if v != 0 {
			t.Error("zero matrix SpMV must be zero")
		}
	}
}

func TestELLMulVecDimPanic(t *testing.T) {
	e, err := ToELL(small4(t))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	e.MulVec(make([]float64, 4), make([]float64, 3))
}

func TestELLPaddingSkewedRows(t *testing.T) {
	// One dense row among sparse ones: heavy padding, the format's known
	// weakness (and why Trefethen-like matrices suit it poorly).
	n := 20
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
	}
	for j := 0; j < n; j++ {
		if j != 0 {
			c.Add(0, j, 1)
		}
	}
	e, err := ToELL(c.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxRowNNZ != n {
		t.Errorf("width = %d, want %d", e.MaxRowNNZ, n)
	}
	if e.PaddingRatio() < 0.8 {
		t.Errorf("skewed matrix should be heavily padded, got %g", e.PaddingRatio())
	}
}

// Property: ELL SpMV agrees with CSR SpMV on random inputs.
func TestPropertyELLSpMV(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		a := randomCSR(rng, n, 0.25)
		e, err := ToELL(a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		a.MulVec(y1, x)
		e.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-10*(1+math.Abs(y1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
