package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// Row i occupies the half-open index range [RowPtr[i], RowPtr[i+1]) of
// ColIdx and Val. Column indices within a row are kept sorted in ascending
// order by all constructors in this package; methods that rely on the
// ordering (Diagonal, binary-searched At) document the assumption.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // length Rows+1
	ColIdx     []int     // length NNZ
	Val        []float64 // length NNZ
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Dims returns the matrix dimensions (rows, cols).
func (m *CSR) Dims() (int, int) { return m.Rows, m.Cols }

// Validate checks structural invariants: monotone row pointers, in-range
// sorted column indices, and consistent array lengths. It returns a
// descriptive error for the first violation found.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: ColIdx length %d != Val length %d", len(m.ColIdx), len(m.Val))
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.Rows] != len(m.Val) {
		return fmt.Errorf("sparse: RowPtr[end] = %d, want NNZ %d", m.RowPtr[m.Rows], len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: row %d has decreasing row pointer (%d > %d)", i, lo, hi)
		}
		prev := -1
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("sparse: row %d has out-of-range column %d", i, c)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d has unsorted or duplicate column %d", i, c)
			}
			prev = c
		}
	}
	return nil
}

// At returns the entry at (i, j), or 0 if it is not stored. Column indices
// must be sorted within each row (as all constructors here guarantee); the
// lookup is a binary search within the row.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.ColIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.Val[lo+k]
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// MulVec computes y = A*x. It panics if dimensions disagree.
func (m *CSR) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dims: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.ColIdx[p]]
		}
		y[i] = s
	}
}

// RowDot returns the dot product of row i with x, i.e. (A*x)[i].
func (m *CSR) RowDot(i int, x []float64) float64 {
	var s float64
	for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
		s += m.Val[p] * x[m.ColIdx[p]]
	}
	return s
}

// Diagonal extracts the main diagonal into a new slice. Entries absent from
// the sparsity pattern are zero.
func (m *CSR) Diagonal() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Transpose returns Aᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	// Count entries per column of A (= per row of Aᵀ).
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr[:m.Cols]...)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			q := next[c]
			next[c]++
			t.ColIdx[q] = i
			t.Val[q] = m.Val[p]
		}
	}
	// Rows of Aᵀ are produced in ascending original-row order, so column
	// indices are already sorted.
	return t
}

// IsSymmetric reports whether the matrix equals its transpose to within tol
// (elementwise absolute difference).
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if t.NNZ() != m.NNZ() {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] != t.RowPtr[i] {
			return false
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] != t.ColIdx[p] || math.Abs(m.Val[p]-t.Val[p]) > tol {
				return false
			}
		}
	}
	return true
}

// Abs returns |A|: the matrix with every stored entry replaced by its
// absolute value. Used for the Strikwerda condition ρ(|B|) < 1.
func (m *CSR) Abs() *CSR {
	a := m.Clone()
	for i, v := range a.Val {
		a.Val[i] = math.Abs(v)
	}
	return a
}

// Scale multiplies every stored entry by s, in place.
func (m *CSR) Scale(s float64) {
	for i := range m.Val {
		m.Val[i] *= s
	}
}

// MaxAbsRowSum returns the infinity norm ‖A‖∞ = max_i Σ_j |a_ij|.
func (m *CSR) MaxAbsRowSum() float64 {
	var best float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += math.Abs(m.Val[p])
		}
		if s > best {
			best = s
		}
	}
	return best
}

// DiagonalDominance returns, for each row, the ratio
// |a_ii| / Σ_{j≠i} |a_ij|; +Inf for rows with an empty off-diagonal part.
// Values greater than 1 in every row mean strict diagonal dominance.
func (m *CSR) DiagonalDominance() []float64 {
	r := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var diag, off float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] == i {
				diag = math.Abs(m.Val[p])
			} else {
				off += math.Abs(m.Val[p])
			}
		}
		if off == 0 {
			r[i] = math.Inf(1)
		} else {
			r[i] = diag / off
		}
	}
	return r
}

// IsStrictlyDiagonallyDominant reports whether |a_ii| > Σ_{j≠i}|a_ij| holds
// for every row.
func (m *CSR) IsStrictlyDiagonallyDominant() bool {
	for i := 0; i < m.Rows; i++ {
		var diag, off float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] == i {
				diag = math.Abs(m.Val[p])
			} else {
				off += math.Abs(m.Val[p])
			}
		}
		if diag <= off {
			return false
		}
	}
	return true
}

// JacobiIterationMatrix returns B = I − D⁻¹A as a new CSR matrix. The
// diagonal of A must be nonzero everywhere; ErrZeroDiagonal is returned
// otherwise. B has the same sparsity pattern as A except that exact zeros on
// the diagonal of B (the common case, since B_ii = 1 − a_ii/a_ii = 0) are
// dropped.
func (m *CSR) JacobiIterationMatrix() (*CSR, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("sparse: iteration matrix requires square input, have %dx%d", m.Rows, m.Cols)
	}
	d := m.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("%w: row %d", ErrZeroDiagonal, i)
		}
	}
	b := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := m.ColIdx[p]
			var v float64
			if j == i {
				v = 1 - m.Val[p]/d[i]
			} else {
				v = -m.Val[p] / d[i]
			}
			if v != 0 {
				b.ColIdx = append(b.ColIdx, j)
				b.Val = append(b.Val, v)
			}
		}
		b.RowPtr[i+1] = len(b.Val)
	}
	return b, nil
}

// ErrZeroDiagonal is returned when an operation requires a nonzero diagonal
// (Jacobi splitting, iteration matrices) and A has a zero diagonal entry.
var ErrZeroDiagonal = errors.New("sparse: zero diagonal entry")

// Splitting is the (D, L+U) decomposition used by relaxation methods, with
// the inverse diagonal precomputed.
type Splitting struct {
	InvDiag []float64 // 1/a_ii
	Diag    []float64 // a_ii
}

// NewSplitting extracts the Jacobi splitting of A. It returns
// ErrZeroDiagonal if any a_ii is zero.
func NewSplitting(a *CSR) (*Splitting, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: splitting requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("%w: row %d", ErrZeroDiagonal, i)
		}
		inv[i] = 1 / v
	}
	return &Splitting{InvDiag: inv, Diag: d}, nil
}

// PermuteSym applies the symmetric permutation P·A·Pᵀ: entry (i, j) moves
// to (perm[i], perm[j]). perm must be a permutation of 0..n−1; the result
// has the same spectrum, symmetry and dominance properties as A.
func PermuteSym(a *CSR, perm []int) (*CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: PermuteSym requires square matrix, have %dx%d", a.Rows, a.Cols)
	}
	if len(perm) != a.Rows {
		return nil, fmt.Errorf("sparse: permutation length %d, want %d", len(perm), a.Rows)
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return nil, fmt.Errorf("sparse: invalid permutation (index %d)", p)
		}
		seen[p] = true
	}
	c := NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			c.Add(perm[i], perm[a.ColIdx[q]], a.Val[q])
		}
	}
	return c.ToCSR(), nil
}

// BlockPartition describes a contiguous partition of row indices into
// blocks, as used by the block-asynchronous method (each block corresponds
// to one GPU thread block / subdomain).
type BlockPartition struct {
	N      int   // total number of rows
	Starts []int // Starts[i] is the first row of block i; len = NumBlocks+1
}

// NewBlockPartition splits n rows into contiguous blocks of the given size
// (the last block may be smaller). It panics for non-positive inputs.
func NewBlockPartition(n, blockSize int) BlockPartition {
	if n <= 0 || blockSize <= 0 {
		panic(fmt.Sprintf("sparse: NewBlockPartition(%d, %d): arguments must be positive", n, blockSize))
	}
	var starts []int
	for s := 0; s < n; s += blockSize {
		starts = append(starts, s)
	}
	starts = append(starts, n)
	return BlockPartition{N: n, Starts: starts}
}

// NumBlocks returns the number of blocks.
func (p BlockPartition) NumBlocks() int { return len(p.Starts) - 1 }

// Bounds returns [start, end) row bounds of block b.
func (p BlockPartition) Bounds(b int) (int, int) { return p.Starts[b], p.Starts[b+1] }

// Size returns the number of rows in block b.
func (p BlockPartition) Size(b int) int { return p.Starts[b+1] - p.Starts[b] }

// BlockOf returns the block index containing row i.
func (p BlockPartition) BlockOf(i int) int {
	// Binary search over Starts: largest b with Starts[b] <= i.
	b := sort.SearchInts(p.Starts, i+1) - 1
	return b
}

// OffBlockFraction returns, for each block, the fraction of the absolute
// off-diagonal mass of its rows that falls *outside* the block:
// Σ_{i∈J} Σ_{j∉J,j≠i} |a_ij| / Σ_{i∈J} Σ_{j≠i} |a_ij|.
// This is the quantity the paper ties to async-(k)'s convergence gain: local
// iterations only see in-block entries.
func (p BlockPartition) OffBlockFraction(a *CSR) []float64 {
	f := make([]float64, p.NumBlocks())
	for b := 0; b < p.NumBlocks(); b++ {
		lo, hi := p.Bounds(b)
		var inBlock, total float64
		for i := lo; i < hi; i++ {
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				j := a.ColIdx[q]
				if j == i {
					continue
				}
				v := math.Abs(a.Val[q])
				total += v
				if j >= lo && j < hi {
					inBlock += v
				}
			}
		}
		if total == 0 {
			f[b] = 0
		} else {
			f[b] = 1 - inBlock/total
		}
	}
	return f
}
