package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
2 2 3.0
3 3 4.0
1 3 -1.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 3 || m.NNZ() != 4 {
		t.Fatalf("got %dx%d nnz=%d", m.Rows, m.Cols, m.NNZ())
	}
	if m.At(0, 2) != -1.5 {
		t.Errorf("At(0,2) = %g, want -1.5", m.At(0, 2))
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 -1.0
3 3 5.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Errorf("symmetric expansion failed: At(0,1)=%g At(1,0)=%g", m.At(0, 1), m.At(1, 0))
	}
	if m.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4 after expansion", m.NNZ())
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Error("pattern entries should read as 1.0")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"badheader", "%%NotMM matrix coordinate real general\n1 1 0\n"},
		{"array", "%%MatrixMarket matrix array real general\n1 1\n"},
		{"badfield", "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"},
		{"badsymm", "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"},
		{"outofrange", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"},
		{"short", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"},
		{"badvalue", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n"},
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 20, 0.2)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NNZ() != m.NNZ() {
		t.Fatalf("round-trip NNZ %d -> %d", m.NNZ(), m2.NNZ())
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := m.ColIdx[p]
			if m2.At(i, j) != m.Val[p] {
				t.Fatalf("round-trip mismatch at (%d,%d): %g vs %g", i, j, m.Val[p], m2.At(i, j))
			}
		}
	}
}

func TestSpy(t *testing.T) {
	m := small4(t)
	var buf bytes.Buffer
	if err := Spy(&buf, m, 4, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+----+") {
		t.Errorf("unexpected spy frame:\n%s", out)
	}
	// Tridiagonal: corner cells (0,3) and (3,0) must be blank.
	lines := strings.Split(out, "\n")
	if lines[1][4] != ' ' {
		t.Errorf("cell (0,3) should be blank in:\n%s", out)
	}
	if lines[4][1] != ' ' {
		t.Errorf("cell (3,0) should be blank in:\n%s", out)
	}
	if err := Spy(&buf, m, 0, 4); err == nil {
		t.Error("expected error for zero width")
	}
}

func TestSpyPGM(t *testing.T) {
	m := small4(t)
	var buf bytes.Buffer
	if err := SpyPGM(&buf, m, 4, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 4\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	pix := out[len("P5\n4 4\n255\n"):]
	if len(pix) != 16 {
		t.Fatalf("pixel payload %d bytes, want 16", len(pix))
	}
	// Tridiagonal: corner (0,3) white, diagonal dark.
	if pix[3] != 255 {
		t.Errorf("corner should be background, got %d", pix[3])
	}
	if pix[0] == 255 {
		t.Error("diagonal cell should be shaded")
	}
	if err := SpyPGM(&buf, m, 0, 1); err == nil {
		t.Error("expected grid validation error")
	}
}
