package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market I/O. Supports the subset of the format the UFMC collection
// uses for the paper's test matrices: "matrix coordinate real
// {general|symmetric}" and "matrix coordinate pattern {general|symmetric}"
// (pattern entries read as 1.0).

// maxMMDim bounds the dimensions ReadMatrixMarket accepts. CSR storage
// allocates rows+1 row pointers before a single entry is validated, so
// without a bound a three-integer size line can demand gigabytes. 2^24
// rows is an order of magnitude above the largest collection matrix the
// paper uses.
const maxMMDim = 1 << 24

// ReadMatrixMarket parses a Matrix Market coordinate stream into CSR.
// Symmetric files are expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("matrixmarket: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("matrixmarket: bad header %q", sc.Text())
	}
	format, field, symm := header[2], header[3], header[4]
	if format != "coordinate" {
		return nil, fmt.Errorf("matrixmarket: unsupported format %q (only coordinate)", format)
	}
	pattern := false
	switch field {
	case "real", "integer":
	case "pattern":
		pattern = true
	default:
		return nil, fmt.Errorf("matrixmarket: unsupported field %q", field)
	}
	symmetric := false
	switch symm {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("matrixmarket: unsupported symmetry %q", symm)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("matrixmarket: bad size line %q: %v", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("matrixmarket: bad dimensions %dx%d", rows, cols)
	}
	if rows > maxMMDim || cols > maxMMDim {
		return nil, fmt.Errorf("matrixmarket: dimensions %dx%d exceed the supported bound %d", rows, cols, maxMMDim)
	}
	if nnz < 0 {
		return nil, fmt.Errorf("matrixmarket: negative entry count %d", nnz)
	}

	coo := NewCOO(rows, cols)
	read := 0
	for sc.Scan() && read < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if pattern {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("matrixmarket: short entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: bad col index %q: %v", f[1], err)
		}
		v := 1.0
		if !pattern {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matrixmarket: bad value %q: %v", f[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("matrixmarket: entry (%d,%d) out of range for %dx%d", i, j, rows, cols)
		}
		if symmetric && i != j {
			coo.AddSym(i-1, j-1, v)
		} else {
			coo.Add(i-1, j-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("matrixmarket: read: %w", err)
	}
	if read < nnz {
		return nil, fmt.Errorf("matrixmarket: expected %d entries, got %d", nnz, read)
	}
	return coo.ToCSR(), nil
}

// WriteMatrixMarket writes the matrix in "coordinate real general" format.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
