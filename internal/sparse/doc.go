// Package sparse provides the sparse-matrix substrate used throughout the
// block-asynchronous relaxation library: CSR and COO storage, matrix-vector
// products, Jacobi splittings, block extraction, Matrix Market I/O, and
// sparsity visualization.
//
// It also recognizes constant-coefficient stencil structure
// (stencil.go): a StencilSpec names a fixed set of diagonal offsets and
// coefficients, MatchStencil classifies each row as an exact (bitwise)
// match or not, and DetectStencil searches a matrix for the best such
// spec, accepting when at least a quarter of the rows match. The core
// package's kernel dispatch builds its matrix-free stencil fast path on
// these results (docs/KERNELS.md).
//
// The package is deliberately self-contained (stdlib only) and holds the
// structural operations every solver in this repository builds on.
package sparse
