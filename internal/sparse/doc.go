// Package sparse provides the sparse-matrix substrate used throughout the
// block-asynchronous relaxation library: CSR and COO storage, matrix-vector
// products, Jacobi splittings, block extraction, Matrix Market I/O, and
// sparsity visualization.
//
// The package is deliberately self-contained (stdlib only) and holds the
// structural operations every solver in this repository builds on.
package sparse
