package fault

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// SilentCorruptor injects *silent* errors (paper §4.5: "errors that get
// detected after long time having caused serious damage to the algorithm,
// or never get detected at all"): at the configured global iterations it
// flips a high-order mantissa/exponent bit of randomly chosen iterate
// components, with no notification to the solver. Its Corrupt method plugs
// into core.Options.AfterIteration.
type SilentCorruptor struct {
	rng *rand.Rand
	// at[iter] = number of components corrupted after that iteration.
	at map[int]int
	// Injected records the components actually corrupted, per iteration.
	Injected map[int][]int
}

// NewSilentCorruptor creates a corruptor hitting the given iterations
// (each with one corrupted component).
func NewSilentCorruptor(iterations []int, seed int64) (*SilentCorruptor, error) {
	at := make(map[int]int, len(iterations))
	for _, it := range iterations {
		if it < 1 {
			return nil, fmt.Errorf("fault: corruption iteration %d must be ≥ 1", it)
		}
		at[it]++
	}
	return &SilentCorruptor{
		rng:      rand.New(rand.NewSource(seed)),
		at:       at,
		Injected: make(map[int][]int),
	}, nil
}

// Corrupt implements the core.Options.AfterIteration hook.
func (s *SilentCorruptor) Corrupt(iter int, x core.VectorAccess) {
	count := s.at[iter]
	for c := 0; c < count; c++ {
		i := s.rng.Intn(x.Len())
		v := x.Get(i)
		// Flip bit 52 of the IEEE-754 representation (lowest exponent
		// bit): the classical soft-error model. For a zero value, set a
		// finite garbage value instead (flipping bits of 0.0 yields a
		// subnormal that would go unnoticed).
		bits := math.Float64bits(v)
		corrupted := math.Float64frombits(bits ^ (1 << 52))
		if v == 0 {
			corrupted = 1.0
		}
		x.Set(i, corrupted)
		s.Injected[iter] = append(s.Injected[iter], i)
	}
}

// Detector flags convergence anomalies in a residual history — the paper's
// observation that for problems where convergence is expected, "a
// convergence delay or non-converging sequence of solution approximations
// indicates that a silent error has occurred."
//
// The detector tracks the geometric contraction rate over a sliding window
// and raises an anomaly whenever the residual exceeds the rate-predicted
// value by more than Factor.
type Detector struct {
	// Window is the number of recent contraction ratios averaged for the
	// rate estimate (default 5).
	Window int
	// Factor is the tolerated overshoot over the predicted residual
	// (default 10: an order of magnitude).
	Factor float64
	// Floor suppresses anomalies once residuals reach the round-off
	// regime, where the geometric model no longer applies. Non-positive:
	// defaults to 1e-13 × the first observed residual.
	Floor float64

	history []float64
}

// NewDetector creates a detector with the given window and overshoot
// factor; non-positive arguments select the defaults.
func NewDetector(window int, factor float64) *Detector {
	if window <= 0 {
		window = 5
	}
	if factor <= 0 {
		factor = 10
	}
	return &Detector{Window: window, Factor: factor}
}

// Observe feeds the next residual and reports whether it is anomalous
// under the rate fitted to the preceding window. Residuals below the
// round-off Floor are never anomalous: there the geometric contraction
// model no longer applies.
func (d *Detector) Observe(residual float64) bool {
	defer func() { d.history = append(d.history, residual) }()
	n := len(d.history)
	if n == 0 && d.Floor <= 0 {
		d.Floor = residual * 1e-13
	}
	if residual <= d.Floor {
		return false
	}
	if n < d.Window+1 {
		return false
	}
	// Average contraction over the window ending at the previous residual.
	rate := 1.0
	count := 0
	for i := n - d.Window; i < n; i++ {
		prev, cur := d.history[i-1], d.history[i]
		if prev > 0 && cur > 0 {
			rate *= cur / prev
			count++
		}
	}
	if count == 0 {
		return false
	}
	rate = math.Pow(rate, 1/float64(count))
	if rate >= 1 {
		return false // stagnated or diverging already; no rate to violate
	}
	predicted := d.history[n-1] * rate
	return residual > predicted*d.Factor
}

// Reset clears the observation history.
func (d *Detector) Reset() { d.history = d.history[:0] }
