package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/vecmath"
)

func TestSilentCorruptorValidation(t *testing.T) {
	if _, err := NewSilentCorruptor([]int{0}, 1); err == nil {
		t.Error("expected error for iteration 0")
	}
	if _, err := NewSilentCorruptor([]int{-3}, 1); err == nil {
		t.Error("expected error for negative iteration")
	}
}

func TestSilentCorruptorFlipsBits(t *testing.T) {
	sc, err := NewSilentCorruptor([]int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1.0
	}
	access := testAccess(x)
	sc.Corrupt(1, access)
	for _, v := range x {
		if v != 1.0 {
			t.Fatal("corruption fired at the wrong iteration")
		}
	}
	sc.Corrupt(2, access)
	changed := 0
	for _, v := range x {
		if v != 1.0 {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("exactly one component should be corrupted, got %d", changed)
	}
	if len(sc.Injected[2]) != 1 {
		t.Errorf("Injected bookkeeping wrong: %v", sc.Injected)
	}
}

func TestSilentCorruptorZeroValue(t *testing.T) {
	sc, err := NewSilentCorruptor([]int{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4) // zeros
	sc.Corrupt(1, testAccess(x))
	changed := false
	for _, v := range x {
		if v != 0 {
			changed = true
			if v != 1.0 {
				t.Errorf("zero-value corruption should set 1.0, got %g", v)
			}
		}
	}
	if !changed {
		t.Error("no component corrupted")
	}
}

// testAccess adapts a []float64 for the hook interface without exporting
// the core-internal adapter.
type testAccess []float64

func (s testAccess) Len() int             { return len(s) }
func (s testAccess) Get(i int) float64    { return s[i] }
func (s testAccess) Set(i int, v float64) { s[i] = v }

func TestDetectorFlagsInjectedError(t *testing.T) {
	// Converge async-(5) on fv-like system, silently corrupt one component
	// at iteration 25, and verify (a) the convergence is visibly delayed
	// and (b) the detector flags the anomaly at exactly that point.
	a := mats.FV(30, 30, 1.368)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))

	sc, err := NewSilentCorruptor([]int{25}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(a, b, core.Options{
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 60,
		RecordHistory:  true,
		Seed:           1,
		AfterIteration: sc.Corrupt,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(5, 10)
	flagged := -1
	for i, r := range res.History {
		if det.Observe(r) && flagged < 0 {
			flagged = i + 1
		}
	}
	if flagged < 0 {
		t.Fatal("detector missed the injected silent error")
	}
	// The corruption lands after iteration 25; the residual measured at
	// iteration 25 already includes it.
	if flagged < 25 || flagged > 28 {
		t.Errorf("flagged at iteration %d, want 25–28", flagged)
	}
	// The solver still self-heals: asynchronous iteration re-converges.
	last := res.History[len(res.History)-1]
	if last > res.History[23] {
		t.Errorf("iteration did not recover from the silent error: %g vs %g", last, res.History[23])
	}
}

func TestDetectorQuietOnCleanRun(t *testing.T) {
	a := mats.FV(30, 30, 1.368)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	res, err := core.Solve(a, b, core.Options{
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 60,
		RecordHistory:  true,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(5, 10)
	for i, r := range res.History {
		if det.Observe(r) {
			t.Fatalf("false positive at iteration %d (residual %g)", i+1, r)
		}
	}
}

func TestDetectorIgnoresPlateau(t *testing.T) {
	// The round-off floor (rate ≈ 1) must not trigger anomalies: once the
	// residual drops below Floor relative to the start, flags stop.
	det := NewDetector(4, 10)
	rs := []float64{1, 1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12, 1e-14, 1.2e-14, 1e-14, 1.1e-14}
	for i, r := range rs {
		if det.Observe(r) {
			t.Fatalf("plateau flagged at index %d (residual %g)", i, r)
		}
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(0, 0)
	if d.Window != 5 || d.Factor != 10 {
		t.Errorf("defaults wrong: %+v", d)
	}
}

func TestAfterIterationHookGoroutineEngine(t *testing.T) {
	// The hook must also fire (and be able to mutate) under the goroutine
	// engine.
	a := mats.Poisson2D(12, 12)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	fired := 0
	_, err := core.Solve(a, b, core.Options{
		BlockSize:      32,
		LocalIters:     2,
		MaxGlobalIters: 5,
		Engine:         core.EngineGoroutine,
		AfterIteration: func(iter int, x core.VectorAccess) {
			fired++
			if x.Len() != a.Rows {
				t.Errorf("hook got length %d", x.Len())
			}
			x.Set(0, x.Get(0)) // read-write round trip
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Errorf("hook fired %d times, want 5", fired)
	}
}
