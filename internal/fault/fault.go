package fault

import (
	"fmt"
	"math/rand"
)

// Injector decides, per global iteration, which blocks are dead. It is the
// fault-injection counterpart of the failure scenario in the paper: the
// failed blocks are chosen uniformly at random at construction time
// (seeded), matching "a preset number of randomly chosen components is no
// longer considered in the iteration process".
type Injector struct {
	failAt   int
	recovery int // iterations until reassignment; <0 = never
	dead     map[int]bool
}

// NewInjector creates an injector killing fraction of the numBlocks blocks
// at global iteration failAt (1-based). recovery is the number of
// iterations after which the workload is reassigned to healthy cores
// (recovery-(tr) in the paper); pass a negative value for no recovery.
func NewInjector(numBlocks int, fraction float64, failAt, recovery int, seed int64) (*Injector, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("fault: numBlocks %d must be positive", numBlocks)
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("fault: fraction %g outside [0,1]", fraction)
	}
	if failAt < 1 {
		return nil, fmt.Errorf("fault: failAt %d must be ≥ 1", failAt)
	}
	rng := rand.New(rand.NewSource(seed))
	kill := int(fraction*float64(numBlocks) + 0.5)
	perm := rng.Perm(numBlocks)
	dead := make(map[int]bool, kill)
	for _, b := range perm[:kill] {
		dead[b] = true
	}
	return &Injector{failAt: failAt, recovery: recovery, dead: dead}, nil
}

// NumDead returns how many blocks the injector kills.
func (in *Injector) NumDead() int { return len(in.dead) }

// DeadBlocks returns the failed block indices (unordered).
func (in *Injector) DeadBlocks() []int {
	out := make([]int, 0, len(in.dead))
	for b := range in.dead {
		out = append(out, b)
	}
	return out
}

// SkipBlock reports whether block is dead at global iteration iter. It has
// the signature of blockasync.Options.SkipBlock.
func (in *Injector) SkipBlock(iter, block int) bool {
	if !in.dead[block] {
		return false
	}
	if iter < in.failAt {
		return false // failure has not happened yet
	}
	if in.recovery >= 0 && iter >= in.failAt+in.recovery {
		return false // operating system reassigned the workload
	}
	return true
}

// Recovered reports whether the injector's blocks are live again at iter.
func (in *Injector) Recovered(iter int) bool {
	return in.recovery >= 0 && iter >= in.failAt+in.recovery
}
