package fault

import (
	"sync"
	"testing"
	"time"
)

func TestNewChaosValidates(t *testing.T) {
	for _, cfg := range []ChaosConfig{
		{DelayProb: -0.1},
		{DelayProb: 1.1},
		{ReorderProb: 2},
		{StaleProb: -1},
		{MaxDelay: -time.Second},
	} {
		if _, err := NewChaos(cfg); err == nil {
			t.Errorf("NewChaos(%+v) accepted", cfg)
		}
	}
	if _, err := NewChaos(ChaosConfig{DelayProb: 0.5, StaleProb: 0.5, ReorderProb: 0.5}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestChaosProbabilitiesAndCounters(t *testing.T) {
	c, err := NewChaos(ChaosConfig{
		DelayProb:   1,
		MaxDelay:    time.Microsecond,
		ReorderProb: 1,
		StaleProb:   1,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	order := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < 20; i++ {
		c.Delay(i, 0)
		c.Reorder(i, order)
		if !c.StaleRead(i, 0) {
			t.Fatal("StaleProb 1 returned false")
		}
	}
	st := c.Stats()
	if st.Delays != 20 || st.Reorders != 20 || st.StaleReads != 20 {
		t.Fatalf("stats = %+v, want 20 each", st)
	}

	off, err := NewChaos(ChaosConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		off.Delay(i, 0)
		off.Reorder(i, order)
		if off.StaleRead(i, 0) {
			t.Fatal("zero probabilities injected a stale read")
		}
	}
	if st := off.Stats(); st != (ChaosStats{}) {
		t.Fatalf("zero-prob injector did something: %+v", st)
	}
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	decisions := func(seed int64) []bool {
		c, err := NewChaos(ChaosConfig{StaleProb: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 100)
		for i := range out {
			out[i] = c.StaleRead(i, i%7)
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded decisions diverge at %d", i)
		}
	}
	cDiff := decisions(43)
	same := true
	for i := range a {
		if a[i] != cDiff[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds made identical decisions")
	}
}

func TestChaosConcurrentUse(t *testing.T) {
	c, err := NewChaos(ChaosConfig{StaleProb: 0.5, ReorderProb: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			order := []int{0, 1, 2, 3}
			for i := 0; i < 500; i++ {
				c.StaleRead(i, i%4)
				c.Reorder(i, order)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.StaleReads == 0 || st.Reorders == 0 {
		t.Fatalf("expected some injections, got %+v", st)
	}
}
