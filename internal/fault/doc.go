// Package fault implements the hardware-failure experiment of paper §4.5:
// at a chosen global iteration t0, a fraction of the computing cores —
// i.e. of the thread blocks they iterate — breaks down. The components
// handled by dead cores are no longer updated. An implementation may then
//
//   - recover after tr iterations ("recovery-(tr)"): the operating system
//     detects the failure and reassigns the dead blocks to healthy cores,
//     after which convergence resumes with a delay; or
//   - never recover: the iteration keeps running on the surviving
//     components and stalls at a solution approximation with significant
//     residual error.
//
// Injector plugs into blockasync.Options.SkipBlock.
package fault
