package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig parameterizes a Chaos injector. All probabilities are per
// opportunity: Delay and StaleRead fire per block execution, Reorder per
// global iteration.
type ChaosConfig struct {
	// DelayProb is the probability that a block execution is delayed.
	DelayProb float64
	// MaxDelay bounds one injected delay; the actual sleep is uniform in
	// (0, MaxDelay]. Zero with DelayProb > 0 defaults to 1ms.
	MaxDelay time.Duration
	// ReorderProb is the probability that an iteration's block order is
	// reshuffled.
	ReorderProb float64
	// StaleProb is the probability that a block is forced to read the
	// iteration-start snapshot (a maximally late dispatch).
	StaleProb float64
	// Seed drives the injector's RNG; runs with equal seeds make the same
	// decisions (the sleeps themselves still race, which is the point).
	Seed int64
}

// ChaosStats counts what an injector actually did.
type ChaosStats struct {
	Delays     int64 `json:"delays"`
	Reorders   int64 `json:"reorders"`
	StaleReads int64 `json:"stale_reads"`
}

// Chaos injects adversarial scheduling perturbations into an engine run.
// Its methods match the signatures of blockasync's ChaosHooks fields, so
// wiring is
//
//	c, _ := fault.NewChaos(cfg)
//	opt.Chaos = &core.ChaosHooks{Delay: c.Delay, Reorder: c.Reorder, StaleRead: c.StaleRead}
//
// Unlike Injector (which models the paper's §4.5 core failures by
// skipping blocks), Chaos keeps every block running but perturbs when it
// runs and what it observes — the block-asynchronous model says the
// iteration must converge anyway whenever ρ(|B|) < 1.
//
// All methods are safe for concurrent use; engines may call the hooks
// from many workers.
type Chaos struct {
	cfg ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	delays     atomic.Int64
	reorders   atomic.Int64
	staleReads atomic.Int64
}

// NewChaos validates the config and builds an injector.
func NewChaos(cfg ChaosConfig) (*Chaos, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DelayProb", cfg.DelayProb}, {"ReorderProb", cfg.ReorderProb}, {"StaleProb", cfg.StaleProb}} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("fault: %s %g outside [0,1]", p.name, p.v)
		}
	}
	if cfg.MaxDelay < 0 {
		return nil, fmt.Errorf("fault: MaxDelay %v must be nonnegative", cfg.MaxDelay)
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = time.Millisecond
	}
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// coin draws one uniform float under the lock.
func (c *Chaos) coin() float64 {
	c.mu.Lock()
	v := c.rng.Float64()
	c.mu.Unlock()
	return v
}

// Delay sleeps for a random duration in (0, MaxDelay] with probability
// DelayProb. It has the signature of ChaosHooks.Delay.
func (c *Chaos) Delay(iter, block int) {
	if c.cfg.DelayProb == 0 || c.coin() >= c.cfg.DelayProb {
		return
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay))) + 1
	c.mu.Unlock()
	c.delays.Add(1)
	time.Sleep(d)
}

// Reorder reshuffles the iteration's block order in place with
// probability ReorderProb. It has the signature of ChaosHooks.Reorder.
func (c *Chaos) Reorder(iter int, order []int) {
	if c.cfg.ReorderProb == 0 || c.coin() >= c.cfg.ReorderProb {
		return
	}
	c.mu.Lock()
	c.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	c.mu.Unlock()
	c.reorders.Add(1)
}

// StaleRead forces the block onto the iteration-start snapshot with
// probability StaleProb. It has the signature of ChaosHooks.StaleRead.
func (c *Chaos) StaleRead(iter, block int) bool {
	if c.cfg.StaleProb == 0 || c.coin() >= c.cfg.StaleProb {
		return false
	}
	c.staleReads.Add(1)
	return true
}

// Stats snapshots the injection counters.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Delays:     c.delays.Load(),
		Reorders:   c.reorders.Load(),
		StaleReads: c.staleReads.Load(),
	}
}
