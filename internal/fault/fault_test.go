package fault

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/vecmath"
)

func TestInjectorValidation(t *testing.T) {
	cases := []struct {
		nb     int
		frac   float64
		failAt int
	}{
		{0, 0.5, 1}, {10, -0.1, 1}, {10, 1.5, 1}, {10, 0.5, 0},
	}
	for i, c := range cases {
		if _, err := NewInjector(c.nb, c.frac, c.failAt, 10, 1); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestInjectorKillCount(t *testing.T) {
	in, err := NewInjector(20, 0.25, 10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumDead() != 5 {
		t.Errorf("NumDead = %d, want 5", in.NumDead())
	}
	if len(in.DeadBlocks()) != 5 {
		t.Errorf("DeadBlocks length = %d", len(in.DeadBlocks()))
	}
}

func TestInjectorTimeline(t *testing.T) {
	in, err := NewInjector(10, 0.3, 10, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	dead := in.DeadBlocks()[0]
	if in.SkipBlock(5, dead) {
		t.Error("block dead before failure time")
	}
	if !in.SkipBlock(10, dead) || !in.SkipBlock(29, dead) {
		t.Error("block must be dead in [failAt, failAt+recovery)")
	}
	if in.SkipBlock(30, dead) {
		t.Error("block must recover at failAt+recovery")
	}
	if !in.Recovered(30) || in.Recovered(29) {
		t.Error("Recovered timeline wrong")
	}
	// A block that never failed is always live.
	live := -1
	deadSet := map[int]bool{}
	for _, b := range in.DeadBlocks() {
		deadSet[b] = true
	}
	for b := 0; b < 10; b++ {
		if !deadSet[b] {
			live = b
			break
		}
	}
	if in.SkipBlock(15, live) {
		t.Error("healthy block reported dead")
	}
}

func TestInjectorNoRecovery(t *testing.T) {
	in, err := NewInjector(10, 0.5, 5, -1, 3)
	if err != nil {
		t.Fatal(err)
	}
	dead := in.DeadBlocks()[0]
	if !in.SkipBlock(1_000_000, dead) {
		t.Error("no-recovery injector must keep the block dead forever")
	}
	if in.Recovered(1_000_000) {
		t.Error("no-recovery injector can never report recovered")
	}
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	a, _ := NewInjector(50, 0.25, 1, -1, 7)
	b, _ := NewInjector(50, 0.25, 1, -1, 7)
	am := map[int]bool{}
	for _, x := range a.DeadBlocks() {
		am[x] = true
	}
	for _, x := range b.DeadBlocks() {
		if !am[x] {
			t.Fatal("same seed chose different dead blocks")
		}
	}
}

// Integration: the paper's Figure 10 scenario. 25% of cores fail at t0=10;
// with recovery the solver still converges (with delay), without recovery
// it stalls at a large residual.
func TestFaultScenarioRecoveryVsNone(t *testing.T) {
	a := mats.FV(30, 30, 1.368)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))

	base := core.Options{
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 120,
		Tolerance:      0,
		RecordHistory:  true,
		Seed:           1,
	}
	nb := (a.Rows + base.BlockSize - 1) / base.BlockSize

	solve := func(inj *Injector) []float64 {
		opt := base
		if inj != nil {
			opt.SkipBlock = inj.SkipBlock
		}
		res, err := core.Solve(a, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.History
	}

	clean := solve(nil)
	injRec, err := NewInjector(nb, 0.25, 10, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	recovered := solve(injRec)
	injNone, err := NewInjector(nb, 0.25, 10, -1, 5)
	if err != nil {
		t.Fatal(err)
	}
	none := solve(injNone)

	last := len(clean) - 1
	if !(clean[last] < 1e-10) {
		t.Fatalf("clean run residual %g, expected deep convergence", clean[last])
	}
	// Recovery: converges to (nearly) the same level, delayed.
	if recovered[last] > clean[last]*1e6 && recovered[last] > 1e-6 {
		t.Errorf("recovered run stalled at %g", recovered[last])
	}
	// During the outage the recovered run must lag the clean run.
	if !(recovered[20] > clean[20]) {
		t.Errorf("outage should delay convergence: recovered %g vs clean %g at iter 21",
			recovered[20], clean[20])
	}
	// No recovery: significant residual error, orders of magnitude above.
	if none[last] < 1e-3*none[9] {
		t.Errorf("no-recovery run should stall near the failure-time residual; went %g -> %g",
			none[9], none[last])
	}
	if none[last] < clean[last]*1e6 {
		t.Errorf("no-recovery residual %g should be far above clean %g", none[last], clean[last])
	}
}

// The paper: "continuing the iteration process for the remaining components
// has no influence on the generated values" — the surviving components
// converge to the solution of the reduced system, so the residual stalls at
// a constant level.
func TestNoRecoveryResidualPlateaus(t *testing.T) {
	a := mats.Trefethen(500)
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	nb := (a.Rows + 63) / 64
	inj, err := NewInjector(nb, 0.25, 10, -1, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(a, b, core.Options{
		BlockSize:      64,
		LocalIters:     5,
		MaxGlobalIters: 80,
		RecordHistory:  true,
		Seed:           2,
		SkipBlock:      inj.SkipBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	// Plateau: the last 20 iterations change by < 1% relative.
	for i := len(h) - 20; i < len(h)-1; i++ {
		if math.Abs(h[i+1]-h[i]) > 0.01*h[i] {
			t.Fatalf("residual still moving at iteration %d: %g -> %g", i+1, h[i], h[i+1])
		}
	}
}
