#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end fleet smoke test over real processes.
#
# Boots three solverd nodes and the consistent-hash gateway, drives an
# open-loop loadgen run through the gateway, and SIGTERMs one node
# mid-run (graceful drain: /readyz flips 503, the gateway ejects it and
# routes around) before restarting it (the gateway re-admits it and the
# ring returns to its original placement).
#
# The blend carries a doomed fraction (certified-divergent matrices
# submitted with certify=enforce, which every node must refuse with a
# fast 422 — silently admitting one burns a provably divergent budget), a
# session fraction (create + warm-started steps + close through the
# gateway's sticky session routing; steps answered 410 "session-lost"
# while the owner drains are counted, not errored) and a batch fraction
# (many small systems per submission, one queue slot).
#
# After the ring is restored, a second, no-kill strict phase reruns a
# session/batch-heavy blend with -fail-on-session-lost: in a steady fleet
# a lost session means state was dropped with no node dying — gated to
# zero.
#
# Failure conditions:
#   - loadgen -strict exits nonzero in either phase (any non-202/429
#     response, failed job, silently admitted doomed matrix, batch system
#     failure, or slow 422s)
#   - any session lost in the no-kill phase (-fail-on-session-lost)
#   - no doomed submission was certificate-rejected, or no session
#     stepped (a blend kind never exercised)
#   - "panic:" appears in any process log
#   - the ring does not return to 3 healthy nodes after the restart
#
# Artifacts (logs + the loadgen JSON report) land in $FLEET_SMOKE_DIR
# (default: fleet-smoke-artifact/) for CI upload.
set -euo pipefail

cd "$(dirname "$0")/.."

ART="${FLEET_SMOKE_DIR:-fleet-smoke-artifact}"
BIN="$ART/bin"
mkdir -p "$BIN"

echo "fleet-smoke: building binaries"
go build -o "$BIN/solverd" ./cmd/solverd
go build -o "$BIN/gateway" ./cmd/gateway
go build -o "$BIN/loadgen" ./cmd/loadgen

PIDS=()
cleanup() {
    kill "${PIDS[@]}" >/dev/null 2>&1 || true
    wait >/dev/null 2>&1 || true
}
trap cleanup EXIT

start_node() { # $1 = node index; appends to the node's log across restarts
    "$BIN/solverd" -addr "127.0.0.1:1808$1" -workers 2 -queue-depth 16 \
        >>"$ART/node$1.log" 2>&1 &
    echo $!
}

wait_url() { # $1 = url, $2 = description
    for _ in $(seq 1 100); do
        if curl -fsS "$1" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "fleet-smoke: FAIL: $2 never became ready at $1" >&2
    exit 1
}

N0=$(start_node 0)
N1=$(start_node 1)
N2=$(start_node 2)
PIDS+=("$N0" "$N1" "$N2")

"$BIN/gateway" -addr 127.0.0.1:19090 \
    -node n0=http://127.0.0.1:18080 \
    -node n1=http://127.0.0.1:18081 \
    -node n2=http://127.0.0.1:18082 \
    -probe-interval 250ms -probe-timeout 1s \
    >"$ART/gateway.log" 2>&1 &
GW=$!
PIDS+=("$GW")

wait_url http://127.0.0.1:18080/readyz "node 0"
wait_url http://127.0.0.1:18081/readyz "node 1"
wait_url http://127.0.0.1:18082/readyz "node 2"
wait_url http://127.0.0.1:19090/readyz "gateway"
echo "fleet-smoke: fleet is up (3 nodes + gateway)"

# Open-loop burst through the gateway: 20s at 40 req/s over a 24-matrix
# Zipf corpus with a solve-heavy blend plus doomed, session and batch
# fractions. -strict makes loadgen exit nonzero on any non-202/429
# response, failed job, silently admitted doomed matrix, batch system
# failure, or slow 422s — shedding is allowed under churn, and sessions
# owned by the SIGTERMed node may come back 410 session-lost (counted in
# the report, honest by design), but erroring and burning are not.
"$BIN/loadgen" -target http://127.0.0.1:19090 \
    -rate 40 -duration 20s \
    -corpus 24 -min-n 32 -max-n 96 -max-iters 400 \
    -blend 8:1:1:2:3:2 -session-steps 3 -batch-systems 3 -strict \
    -out "$ART/loadgen-report.json" \
    >"$ART/loadgen.log" 2>&1 &
LG=$!

# A third into the run, gracefully kill one node (drain: it finishes
# in-flight jobs, the gateway ejects it and routes its keys to the
# survivors); two thirds in, restart it (the gateway re-admits it).
sleep 7
echo "fleet-smoke: SIGTERM node 2 (graceful drain)"
kill -TERM "$N2"
wait "$N2" 2>/dev/null || true
sleep 6
echo "fleet-smoke: restarting node 2"
N2=$(start_node 2)
PIDS+=("$N2")

FAIL=0
if ! wait "$LG"; then
    echo "fleet-smoke: FAIL: loadgen -strict exited nonzero" >&2
    FAIL=1
fi
tail -n 3 "$ART/loadgen.log" || true

# The restarted node must be re-admitted: poll the gateway membership
# until all 3 nodes are healthy again.
RESTORED=0
for _ in $(seq 1 100); do
    if curl -fsS http://127.0.0.1:19090/v1/nodes 2>/dev/null | grep -q '"healthy_nodes": *3'; then
        RESTORED=1
        break
    fi
    sleep 0.1
done
if [ "$RESTORED" != 1 ]; then
    echo "fleet-smoke: FAIL: ring did not return to 3 healthy nodes" >&2
    curl -fsS http://127.0.0.1:19090/v1/nodes >&2 || true
    FAIL=1
else
    echo "fleet-smoke: ring restored to 3 healthy nodes"
fi

# The certify step must actually have fired: the doomed blend fraction
# guarantees doomed arrivals, and every one that wasn't shed must appear
# as a 422 certificate rejection in the report.
REJECTED=$(grep -o '"cert_rejected": *[0-9]*' "$ART/loadgen-report.json" | grep -o '[0-9]*$' || echo 0)
if [ "${REJECTED:-0}" -lt 1 ]; then
    echo "fleet-smoke: FAIL: no doomed submission was certificate-rejected (cert_rejected=$REJECTED)" >&2
    FAIL=1
else
    echo "fleet-smoke: certify enforcement rejected $REJECTED doomed submissions"
fi

# Sessions must actually have flowed: the session blend fraction
# guarantees arrivals, and the steady majority of the fleet must have
# stepped them (losses from the killed node are fine; zero steps means
# the session path never worked).
STEPPED=$(grep -o '"session_steps": *[0-9]*' "$ART/loadgen-report.json" | grep -o '[0-9]*$' || echo 0)
LOST=$(grep -o '"sessions_lost": *[0-9]*' "$ART/loadgen-report.json" | grep -o '[0-9]*$' || echo 0)
if [ "${STEPPED:-0}" -lt 1 ]; then
    echo "fleet-smoke: FAIL: no session step succeeded (session_steps=$STEPPED)" >&2
    FAIL=1
else
    echo "fleet-smoke: sessions stepped $STEPPED times across the kill ($LOST lost to the drain)"
fi

# Phase 2: steady fleet, session/batch-heavy, no kills. Every session
# must live its full create/step/close life — -fail-on-session-lost
# turns a single lost session into a nonzero exit, because with no node
# dying there is no honest way to lose one.
echo "fleet-smoke: no-kill strict phase (sessions must not be lost)"
if ! "$BIN/loadgen" -target http://127.0.0.1:19090 \
    -rate 30 -duration 8s \
    -corpus 16 -min-n 32 -max-n 96 -max-iters 400 \
    -blend 4:0:0:0:4:2 -session-steps 3 -batch-systems 3 \
    -strict -fail-on-session-lost \
    -out "$ART/loadgen-nokill-report.json" \
    >"$ART/loadgen-nokill.log" 2>&1; then
    echo "fleet-smoke: FAIL: no-kill strict phase exited nonzero" >&2
    tail -n 5 "$ART/loadgen-nokill.log" >&2 || true
    FAIL=1
else
    tail -n 2 "$ART/loadgen-nokill.log" || true
fi

if grep -l "panic:" "$ART"/*.log >/dev/null 2>&1; then
    echo "fleet-smoke: FAIL: panic in process logs:" >&2
    grep -n "panic:" "$ART"/*.log >&2 || true
    FAIL=1
fi

if [ "$FAIL" != 0 ]; then
    echo "fleet-smoke: FAIL (artifacts in $ART)" >&2
    exit 1
fi
echo "fleet-smoke: PASS (artifacts in $ART)"
