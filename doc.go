// Package repro is a Go reproduction of "A Block-Asynchronous Relaxation
// Method for Graphics Processing Units" (Anzt, Tomov, Dongarra, Heuveline;
// IPDPS Workshops 2012 / JPDC special issue).
//
// It provides, as a library:
//
//   - the block-asynchronous relaxation method async-(k) with three
//     execution engines (deterministic seeded chaos, real goroutine
//     asynchrony, and a fully barrier-free extension);
//   - the synchronous baselines the paper compares against (Jacobi,
//     Gauss-Seidel, SOR, τ-scaled Jacobi, CG);
//   - the sparse-matrix substrate (CSR/COO, Matrix Market I/O) and
//     generators for the paper's seven test systems;
//   - a calibrated performance model of the paper's hardware (Fermi C2070
//     GPU + Xeon E5540 host, multi-GPU topologies with the AMC/DC/DK
//     communication strategies);
//   - fault injection with recovery (the paper's Exascale resilience
//     study) and spectral estimators for the convergence theory
//     (ρ(B), ρ(|B|), condition numbers, τ-scaling).
//
// This package is a façade: it re-exports the library's public surface
// from the internal implementation packages so downstream code needs a
// single import. The experiment harness that regenerates every table and
// figure of the paper lives in cmd/benchtables and the root benchmark
// suite (bench_test.go); see DESIGN.md and EXPERIMENTS.md.
//
// # Quick start
//
//	a := repro.GenerateMatrix("Trefethen_2000").A
//	b := repro.OnesRHS(a)
//	res, err := repro.SolveAsync(a, b, repro.AsyncOptions{
//	    BlockSize:      448,
//	    LocalIters:     5,
//	    MaxGlobalIters: 200,
//	    Tolerance:      1e-10,
//	})
package repro
