// Freerunning: the barrier-free extension engine. Workers sweep their
// blocks with no global synchronization of any kind — the purest software
// realization of Chazan–Miranker chaotic relaxation — while a monitor
// watches the residual. Compares against the per-iteration engines on the
// same problem.
//
// Run with:
//
//	go run ./examples/freerunning [-grid 40] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	grid := flag.Int("grid", 40, "Poisson grid side")
	workers := flag.Int("workers", 8, "free-running workers")
	tol := flag.Float64("tol", 1e-9, "absolute residual tolerance")
	flag.Parse()

	a := repro.Poisson2D(*grid, *grid)
	b := repro.OnesRHS(a)
	fmt.Printf("2-D Poisson %dx%d (n=%d), tolerance %.0e\n\n", *grid, *grid, a.Rows, *tol)

	// Reference: the per-global-iteration engine (barrier per sweep).
	start := time.Now()
	sync, err := repro.SolveAsync(a, b, repro.AsyncOptions{
		BlockSize:      100,
		LocalIters:     3,
		MaxGlobalIters: 100000,
		Tolerance:      *tol,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-iteration engine: %d global iterations, residual %.2e (%v wall)\n",
		sync.GlobalIterations, sync.Residual, time.Since(start).Round(time.Millisecond))

	// Free-running: no barrier at all. Fairness comes from each worker
	// round-robining its own blocks; progress tracking from a monitor.
	start = time.Now()
	free, err := repro.SolveFreeRunning(a, b, repro.FreeRunningOptions{
		BlockSize:       100,
		LocalIters:      3,
		MaxBlockUpdates: 10_000_000,
		Tolerance:       *tol,
		Workers:         *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("free-running engine:  %.1f equivalent global iterations (%d block updates), residual %.2e (%v wall)\n",
		free.EquivalentGlobalIters, free.BlockUpdates, free.Residual, time.Since(start).Round(time.Millisecond))

	if !sync.Converged || !free.Converged {
		log.Fatal("a solver failed to converge")
	}

	var maxDiff float64
	for i := range free.X {
		if d := free.X[i] - sync.X[i]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("\nmax |x_free - x_sync| = %.2e — same fixed point, no synchronization needed.\n", maxDiff)
	fmt.Println("This is the property the paper's Exascale argument rests on: the")
	fmt.Println("asynchronous iteration tolerates arbitrary update orders and delays.")
}
