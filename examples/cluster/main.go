// Cluster: the distributed-memory extension from the paper's conclusion
// ("block-asynchronous relaxation methods for GPU-accelerated clusters").
// Nodes own row blocks and exchange boundary values over links with
// bounded delays — the Chazan–Miranker shift bound realized as network
// latency. The demo shows graceful degradation with latency and survival
// of a node failure.
//
// Run with:
//
//	go run ./examples/cluster [-nodes 8] [-matrix Trefethen_2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster nodes")
	matrix := flag.String("matrix", "Trefethen_2000", "test system")
	flag.Parse()

	tm, err := repro.GenerateMatrixErr(*matrix)
	if err != nil {
		log.Fatal(err)
	}
	a := tm.A
	b := repro.OnesRHS(a)
	fmt.Printf("system %s (n=%d) on %d nodes, async-(3) per tick\n\n", tm.Name, a.Rows, *nodes)

	fmt.Println("link-delay sweep (ticks to relative residual 1e-8):")
	for _, d := range []int{1, 4, 16, 64} {
		res, err := repro.SolveCluster(a, b, repro.ClusterOptions{
			Nodes: *nodes, LocalIters: 3, MaxDelay: d, MaxTicks: 50000,
			Tolerance: 1e-8 * norm(b), Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  max delay %3d ticks: converged=%v in %d ticks (max observed staleness %d)\n",
			d, res.Converged, res.Ticks, res.MaxShift)
	}

	fmt.Println("\nnode 3 dies at tick 10 (no recovery):")
	res, err := repro.SolveCluster(a, b, repro.ClusterOptions{
		Nodes: *nodes, LocalIters: 3, MaxDelay: 4, MaxTicks: 60,
		RecordHistory: true, Seed: 1,
		DeadNodes: map[int]int{3: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	b0 := norm(b)
	for tick := 9; tick < len(res.History); tick += 10 {
		fmt.Printf("  tick %3d: relative residual %.2e\n", tick+1, res.History[tick]/b0)
	}
	fmt.Println("\nThe surviving nodes keep iterating; the residual stalls at the dead")
	fmt.Println("node's last contribution instead of the whole job crashing.")
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
