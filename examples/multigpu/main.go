// Multigpu: the paper's §4.6 scaling study. Runs the block-asynchronous
// iteration on the modeled 4-GPU Supermicro node under the three
// communication strategies (asynchronous multicopy, GPU-direct transfer,
// GPU-direct kernel access) and prints the time-to-convergence bar chart
// of Figure 11.
//
// Run with:
//
//	go run ./examples/multigpu [-matrix Trefethen_20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"repro"
)

func main() {
	matrix := flag.String("matrix", "Trefethen_20000", "test system")
	relTol := flag.Float64("reltol", 1e-12, "relative residual target")
	flag.Parse()

	tm, err := repro.GenerateMatrixErr(*matrix)
	if err != nil {
		log.Fatal(err)
	}
	a := tm.A
	b := repro.OnesRHS(a)
	model := repro.CalibratedModel()
	topo := repro.Supermicro()
	fmt.Printf("system %s: n=%d, nnz=%d; topology: %d GPUs, %d per socket\n\n",
		tm.Name, a.Rows, a.NNZ(), topo.MaxGPUs, topo.GPUsPerSocket)

	opt := repro.AsyncOptions{
		BlockSize:      448,
		LocalIters:     5,
		MaxGlobalIters: 10000,
		Tolerance:      *relTol * norm(b),
		Seed:           1,
	}

	var best float64
	type row struct {
		label string
		secs  float64
		na    bool
	}
	var rows []row
	for _, strat := range []repro.Strategy{repro.AMC, repro.DC, repro.DK} {
		for g := 1; g <= topo.MaxGPUs; g++ {
			res, err := repro.SolveMultiGPU(a, b, opt, model, topo, strat, g)
			label := fmt.Sprintf("%-3s %d GPU(s)", strat, g)
			if err != nil {
				rows = append(rows, row{label: label, na: true})
				continue
			}
			if !res.Converged {
				log.Fatalf("%s: did not converge", label)
			}
			rows = append(rows, row{label: label, secs: res.ModeledSeconds})
			if best == 0 || res.ModeledSeconds > best {
				best = res.ModeledSeconds
			}
		}
	}

	fmt.Println("time to convergence (initialization overhead excluded):")
	for _, r := range rows {
		if r.na {
			fmt.Printf("%s | n/a (CUDA 4.0 GPU-direct only reaches devices on one IOH)\n", r.label)
			continue
		}
		bar := strings.Repeat("=", int(r.secs/best*48))
		fmt.Printf("%s |%s %.3f s\n", r.label, bar, r.secs)
	}
	fmt.Println("\nAMC nearly halves the time with a second GPU (independent PCIe links);")
	fmt.Println("a third GPU crosses the QPI socket bridge and loses most of the gain.")
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
