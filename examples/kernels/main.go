// Example kernels demonstrates the sweep-kernel dispatch of
// docs/KERNELS.md from both ends.
//
// In process, it declares the 5-point Poisson stencil via a
// core.PlanConfig StencilSpec — the caller generated the operator, so
// there is nothing to detect — and solves matrix-free: interior rows never
// load a column index. The same plan then solves again with float32
// iterate storage ("precision": "f32"), showing the residual landing at
// the f32 rounding floor instead of the f64 tolerance.
//
// Against a running solverd, it submits one auto-dispatched f32 solve of
// the fv1 stencil family and one explicit sliced-ELL solve, prints the
// resolved kernel and precision echoed in each job result, and scrapes the
// service_kernel_solves_total counters from /metricsz.
//
// Start the daemon first:
//
//	go run ./cmd/solverd -addr :8080
//
// then:
//
//	go run ./examples/kernels -addr http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mats"
	"repro/internal/sparse"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "solverd base URL ('' to skip the daemon half)")
	flag.Parse()

	inProcess()
	if *addr != "" {
		againstDaemon(*addr)
	}
}

// inProcess declares the stencil instead of detecting it and solves
// matrix-free, in f64 and then in f32.
func inProcess() {
	const w, h = 64, 64
	a := mats.Poisson2D(w, h)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	// The caller generated the operator, so it declares the stencil: the
	// 5-point Laplacian on a w-wide grid. A declared spec skips detection
	// entirely (and its threshold — even boundary-heavy matrices qualify).
	plan, err := core.NewPlanWithConfig(a, 512, false, core.PlanConfig{
		Stencil: &sparse.StencilSpec{
			Offsets: []int{-w, -1, 0, 1, w},
			Coeffs:  []float64{-1, -1, 4, -1, -1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	si := plan.StencilInfo()
	fmt.Printf("plan: kernel=%s, %d-point stencil, %d interior / %d boundary rows\n",
		plan.Kernel(), len(si.Spec.Offsets), si.InteriorRows, si.BoundaryRows)

	opt := core.Options{
		BlockSize: 512, LocalIters: 20, MaxGlobalIters: 3000,
		Tolerance: 1e-10, Seed: 1,
	}
	res, err := core.SolveWithPlan(plan, b, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f64: converged=%t iters=%d residual=%.3e\n",
		res.Converged, res.GlobalIterations, res.Residual)

	// Same plan, float32 iterate storage: accumulation and residual checks
	// stay f64, so the iteration converges to the f32 rounding floor and no
	// further — for this operator the floor is ≈ eps32·‖A‖∞·(1+‖x‖₂) ≈ 4e-3,
	// so ask for a tolerance above it (docs/KERNELS.md derives the bound).
	opt.Precision = core.PrecF32
	opt.Tolerance = 1e-2
	res32, err := core.SolveWithPlan(plan, b, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f32: converged=%t iters=%d residual=%.3e\n\n",
		res32.Converged, res32.GlobalIterations, res32.Residual)
}

type submitResponse struct {
	JobID     string `json:"job_id"`
	StatusURL string `json:"status_url"`
}

type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		Converged        bool    `json:"converged"`
		GlobalIterations int     `json:"global_iterations"`
		Residual         float64 `json:"residual"`
		Kernel           string  `json:"kernel"`
		Precision        string  `json:"precision"`
	} `json:"result"`
}

// againstDaemon submits one auto-dispatched f32 solve and one explicit
// sliced-ELL solve, then scrapes the per-kernel solve counters.
func againstDaemon(addr string) {
	reqs := []map[string]any{
		// fv1 is a constant-coefficient stencil family: "auto" resolves to
		// the matrix-free kernel, and the f32 tolerance sits above the
		// rounding floor.
		{"matrix": "fv1", "kernel": "auto", "precision": "f32",
			"block_size": 448, "local_iters": 5, "max_global_iters": 500, "tolerance": 1e-4},
		// Trefethen_2000 has no stencil structure; ask for the sliced-ELL
		// layout explicitly.
		{"matrix": "Trefethen_2000", "kernel": "sell",
			"block_size": 128, "local_iters": 5, "max_global_iters": 500, "tolerance": 1e-8},
	}
	for _, req := range reqs {
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(addr+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var sub submitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("submit %v: unexpected status %d", req["matrix"], resp.StatusCode)
		}
		for {
			var jv jobView
			get(addr+sub.StatusURL, &jv)
			if jv.State == "done" {
				fmt.Printf("%s %s: kernel=%s precision=%s converged=%t iters=%d residual=%.3e\n",
					jv.ID, req["matrix"], jv.Result.Kernel, jv.Result.Precision,
					jv.Result.Converged, jv.Result.GlobalIterations, jv.Result.Residual)
				break
			}
			if jv.State == "failed" || jv.State == "canceled" {
				log.Fatalf("%s: %s: %s", jv.ID, jv.State, jv.Error)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	fmt.Println("\nper-kernel solve counters at /metricsz:")
	resp, err := http.Get(addr + "/metricsz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "service_kernel_solves_total") {
			fmt.Println("  " + sc.Text())
		}
	}
}

func get(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("GET %s: decoding: %v", url, err)
	}
}
