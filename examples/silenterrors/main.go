// Silenterrors: the closing observation of the paper's §4.5 — asynchronous
// methods can *detect* silent errors: "a convergence delay ... indicates
// that a silent error has occurred." A bit flip is injected into the
// iterate mid-solve; the anomaly monitor flags it from the residual
// history alone, and the chaotic iteration then heals itself without any
// rollback.
//
// Run with:
//
//	go run ./examples/silenterrors [-matrix fv1] [-inject 25]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	matrix := flag.String("matrix", "fv1", "test system")
	inject := flag.Int("inject", 25, "global iteration at which the bit flip happens")
	iters := flag.Int("iters", 60, "global iterations")
	flag.Parse()

	tm, err := repro.GenerateMatrixErr(*matrix)
	if err != nil {
		log.Fatal(err)
	}
	a := tm.A
	b := repro.OnesRHS(a)
	fmt.Printf("system %s (n=%d); silent bit flip after global iteration %d\n\n",
		tm.Name, a.Rows, *inject)

	sc, err := repro.NewSilentCorruptor([]int{*inject}, 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.SolveAsync(a, b, repro.AsyncOptions{
		BlockSize:      128,
		LocalIters:     5,
		MaxGlobalIters: *iters,
		RecordHistory:  true,
		Seed:           1,
		AfterIteration: sc.Corrupt,
	})
	if err != nil {
		log.Fatal(err)
	}

	det := repro.NewAnomalyDetector(5, 10)
	b0 := norm(b)
	fmt.Println("iter   rel residual   monitor")
	for i, r := range res.History {
		flag := ""
		if det.Observe(r) {
			flag = "  <-- ANOMALY: silent error suspected"
		}
		if (i+1)%5 == 0 || flag != "" {
			fmt.Printf("%4d   %.3e%s\n", i+1, r/b0, flag)
		}
	}
	fmt.Printf("\ncorrupted components: %v\n", sc.Injected[*inject])
	fmt.Println("No rollback was performed — the asynchronous iteration absorbed the")
	fmt.Println("corruption and re-converged on its own (the §4.5 resilience argument).")
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
