// Example service demonstrates the solver daemon: it submits three
// concurrent auto-tuned solves of the same matrix to a running solverd
// instance, waits for them, and prints the plan- and tuning-cache hit
// rates from /statsz. The first request builds the plan (partition, block
// views, inverse diagonal, LU factors) and runs the parameter search
// (block size, local sweeps k, damping ω); the other two coalesce onto
// that search and reuse both caches — zero extra probe solves. It finishes
// by scraping the tuner counters from /metricsz.
//
// Start the daemon first:
//
//	go run ./cmd/solverd -addr :8080
//
// then:
//
//	go run ./examples/service -addr http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"
)

type submitResponse struct {
	JobID     string `json:"job_id"`
	StatusURL string `json:"status_url"`
}

type tunedParams struct {
	BlockSize       int     `json:"block_size"`
	LocalIters      int     `json:"local_iters"`
	Omega           float64 `json:"omega"`
	SecondsPerDigit float64 `json:"seconds_per_digit"`
	CacheHit        bool    `json:"cache_hit"`
}

type jobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Progress struct {
		GlobalIteration int     `json:"global_iteration"`
		Residual        float64 `json:"residual"`
		PlanHit         bool    `json:"plan_hit"`
	} `json:"progress"`
	Error  string `json:"error"`
	Result *struct {
		Converged        bool         `json:"converged"`
		GlobalIterations int          `json:"global_iterations"`
		Residual         float64      `json:"residual"`
		PlanHit          bool         `json:"plan_hit"`
		WallTime         float64      `json:"wall_seconds"`
		Analysis         string       `json:"analysis"`
		Tuned            *tunedParams `json:"tuned"`
	} `json:"result"`
}

type statsz struct {
	QueueDepth  int     `json:"queue_depth"`
	Workers     int     `json:"workers"`
	BusyWorkers int     `json:"busy_workers"`
	Done        uint64  `json:"jobs_done"`
	PlanHitRate float64 `json:"plan_hit_rate"`
	PlanCache   struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Entries int    `json:"entries"`
		Bytes   int64  `json:"bytes"`
	} `json:"plan_cache"`
	TuneCache struct {
		Searches    uint64 `json:"searches"`
		Hits        uint64 `json:"hits"`
		ProbeSolves uint64 `json:"probe_solves"`
		Entries     int    `json:"entries"`
	} `json:"tune_cache"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "solverd base URL")
	matrix := flag.String("matrix", "Trefethen_2000", "generated matrix name")
	flag.Parse()

	// "tune": "auto" replaces explicit block_size/local_iters/omega: the
	// daemon searches once per matrix fingerprint and caches the winner.
	req := map[string]any{
		"matrix":           *matrix,
		"tune":             "auto",
		"max_global_iters": 200,
		"tolerance":        1e-10,
		"record_history":   true,
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}

	// Submit three identical solves concurrently: the daemon coalesces
	// their plan setup into one build and their tuning into one search.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(*addr+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatalf("solve %d: %v", i, err)
			}
			var sub submitResponse
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				log.Fatalf("solve %d: decoding: %v", i, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				log.Fatalf("solve %d: unexpected status %d", i, resp.StatusCode)
			}

			for {
				var jv jobView
				get(*addr+sub.StatusURL, &jv)
				switch jv.State {
				case "done":
					fmt.Printf("%s: converged=%t iters=%d residual=%.3e plan_hit=%t wall=%.3fs\n",
						jv.ID, jv.Result.Converged, jv.Result.GlobalIterations,
						jv.Result.Residual, jv.Result.PlanHit, jv.Result.WallTime)
					if tp := jv.Result.Tuned; tp != nil {
						fmt.Printf("%s: tuned block=%d local=%d omega=%.3f (%.5f modeled s/digit, cache_hit=%t)\n",
							jv.ID, tp.BlockSize, tp.LocalIters, tp.Omega, tp.SecondsPerDigit, tp.CacheHit)
					}
					if jv.Result.Analysis != "" {
						fmt.Printf("%s: analysis: %s\n", jv.ID, jv.Result.Analysis)
					}
					return
				case "failed", "canceled":
					log.Fatalf("%s: %s: %s", jv.ID, jv.State, jv.Error)
				default:
					time.Sleep(50 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()

	var st statsz
	get(*addr+"/statsz", &st)
	fmt.Printf("\nplan cache: %d hits / %d misses (hit rate %.0f%%), %d entries, %.1f MiB resident\n",
		st.PlanCache.Hits, st.PlanCache.Misses, 100*st.PlanHitRate,
		st.PlanCache.Entries, float64(st.PlanCache.Bytes)/(1<<20))
	fmt.Printf("tune cache: %d searches / %d hits, %d probe solves, %d entries\n",
		st.TuneCache.Searches, st.TuneCache.Hits, st.TuneCache.ProbeSolves, st.TuneCache.Entries)

	// The same counters are exported in Prometheus text format.
	fmt.Println("\ntuner counters at /metricsz:")
	resp, err := http.Get(*addr + "/metricsz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "service_tune_") {
			fmt.Println("  " + sc.Text())
		}
	}
}

func get(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("GET %s: decoding: %v", url, err)
	}
}
