// Example service demonstrates the solver daemon: it submits three
// concurrent solves of the same matrix/configuration to a running solverd
// instance, waits for them, and prints the plan-cache hit rate from
// /statsz — the first request builds the plan (partition, block views,
// inverse diagonal, LU factors), the other two reuse it.
//
// Start the daemon first:
//
//	go run ./cmd/solverd -addr :8080
//
// then:
//
//	go run ./examples/service -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"
)

type submitResponse struct {
	JobID     string `json:"job_id"`
	StatusURL string `json:"status_url"`
}

type jobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Progress struct {
		GlobalIteration int     `json:"global_iteration"`
		Residual        float64 `json:"residual"`
		PlanHit         bool    `json:"plan_hit"`
	} `json:"progress"`
	Error  string `json:"error"`
	Result *struct {
		Converged        bool    `json:"converged"`
		GlobalIterations int     `json:"global_iterations"`
		Residual         float64 `json:"residual"`
		PlanHit          bool    `json:"plan_hit"`
		WallTime         float64 `json:"wall_seconds"`
		Analysis         string  `json:"analysis"`
	} `json:"result"`
}

type statsz struct {
	QueueDepth  int     `json:"queue_depth"`
	Workers     int     `json:"workers"`
	BusyWorkers int     `json:"busy_workers"`
	Done        uint64  `json:"jobs_done"`
	PlanHitRate float64 `json:"plan_hit_rate"`
	PlanCache   struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Entries int    `json:"entries"`
		Bytes   int64  `json:"bytes"`
	} `json:"plan_cache"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "solverd base URL")
	matrix := flag.String("matrix", "Trefethen_2000", "generated matrix name")
	flag.Parse()

	req := map[string]any{
		"matrix":           *matrix,
		"block_size":       448,
		"local_iters":      5,
		"max_global_iters": 200,
		"tolerance":        1e-10,
		"record_history":   true,
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}

	// Submit three identical solves concurrently: the daemon coalesces
	// their plan setup into one build.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(*addr+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatalf("solve %d: %v", i, err)
			}
			var sub submitResponse
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				log.Fatalf("solve %d: decoding: %v", i, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				log.Fatalf("solve %d: unexpected status %d", i, resp.StatusCode)
			}

			for {
				var jv jobView
				get(*addr+sub.StatusURL, &jv)
				switch jv.State {
				case "done":
					fmt.Printf("%s: converged=%t iters=%d residual=%.3e plan_hit=%t wall=%.3fs\n",
						jv.ID, jv.Result.Converged, jv.Result.GlobalIterations,
						jv.Result.Residual, jv.Result.PlanHit, jv.Result.WallTime)
					if jv.Result.Analysis != "" {
						fmt.Printf("%s: analysis: %s\n", jv.ID, jv.Result.Analysis)
					}
					return
				case "failed", "canceled":
					log.Fatalf("%s: %s: %s", jv.ID, jv.State, jv.Error)
				default:
					time.Sleep(50 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()

	var st statsz
	get(*addr+"/statsz", &st)
	fmt.Printf("\nplan cache: %d hits / %d misses (hit rate %.0f%%), %d entries, %.1f MiB resident\n",
		st.PlanCache.Hits, st.PlanCache.Misses, 100*st.PlanHitRate,
		st.PlanCache.Entries, float64(st.PlanCache.Bytes)/(1<<20))
}

func get(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("GET %s: decoding: %v", url, err)
	}
}
