// Quickstart: solve one of the paper's test systems with block-asynchronous
// relaxation (async-(5)) through the public API, and cross-check the answer
// against Gauss-Seidel.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Build the Trefethen_2000 system (primes on the diagonal, ones at
	// power-of-two offsets) with right-hand side b = A·1, so the exact
	// solution is the ones vector.
	tm := repro.GenerateMatrix("Trefethen_2000")
	a := tm.A
	b := repro.OnesRHS(a)
	fmt.Printf("system %s: n=%d, nnz=%d\n", tm.Name, a.Rows, a.NNZ())

	// The spectral checks the paper's theory asks for: Jacobi convergence
	// needs ρ(B) < 1; *asynchronous* convergence needs ρ(|B|) < 1
	// (Strikwerda's condition).
	rho, err := repro.JacobiSpectralRadius(a, 1)
	if err != nil {
		log.Printf("note: ρ(B) estimate: %v", err)
	}
	rhoAbs, err := repro.AbsJacobiSpectralRadius(a, 1)
	if err != nil {
		log.Printf("note: ρ(|B|) estimate: %v", err)
	}
	fmt.Printf("rho(B) = %.4f, rho(|B|) = %.4f (both < 1: async iteration converges)\n", rho, rhoAbs)

	// async-(5): blocks of 448 rows iterate chaotically, each performing
	// five local Jacobi sweeps per global iteration.
	res, err := repro.SolveAsync(a, b, repro.AsyncOptions{
		BlockSize:      448,
		LocalIters:     5,
		MaxGlobalIters: 200,
		Tolerance:      1e-10,
		Seed:           1,
	})
	if err != nil {
		log.Fatalf("async solve: %v", err)
	}
	fmt.Printf("async-(5): converged=%v in %d global iterations, residual %.3e\n",
		res.Converged, res.GlobalIterations, res.Residual)

	// Cross-check with the synchronous CPU baseline.
	gs, err := repro.GaussSeidel(a, b, repro.SolverOptions{MaxIterations: 2000, Tolerance: 1e-10})
	if err != nil {
		log.Fatalf("gauss-seidel: %v", err)
	}
	fmt.Printf("Gauss-Seidel: converged=%v in %d iterations, residual %.3e\n",
		gs.Converged, gs.Iterations, gs.Residual)

	var maxDiff float64
	for i := range res.X {
		if d := abs(res.X[i] - gs.X[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |x_async - x_gs| = %.3e (both converged to the ones vector)\n", maxDiff)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
