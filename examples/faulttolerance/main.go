// Faulttolerance: the paper's §4.5 Exascale resilience scenario. A quarter
// of the computing cores die mid-solve; the block-asynchronous iteration
// keeps running on the survivors and, once the operating system reassigns
// the dead blocks, converges to the same solution with only a modest delay
// — no checkpointing involved.
//
// Run with:
//
//	go run ./examples/faulttolerance [-matrix fv1] [-fraction 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	matrix := flag.String("matrix", "fv1", "test system")
	fraction := flag.Float64("fraction", 0.25, "fraction of cores that fail")
	failAt := flag.Int("failat", 10, "global iteration at which the failure happens")
	iters := flag.Int("iters", 100, "global iterations")
	flag.Parse()

	tm, err := repro.GenerateMatrixErr(*matrix)
	if err != nil {
		log.Fatal(err)
	}
	a := tm.A
	b := repro.OnesRHS(a)
	const blockSize = 128
	numBlocks := (a.Rows + blockSize - 1) / blockSize
	fmt.Printf("system %s: n=%d, %d blocks; %d%% of cores fail at iteration %d\n\n",
		tm.Name, a.Rows, numBlocks, int(100**fraction), *failAt)

	run := func(label string, recovery int) []float64 {
		opt := repro.AsyncOptions{
			BlockSize:      blockSize,
			LocalIters:     5,
			MaxGlobalIters: *iters,
			RecordHistory:  true,
			Seed:           1,
		}
		if recovery != 0 {
			inj, err := repro.NewFaultInjector(numBlocks, *fraction, *failAt, recovery, 7)
			if err != nil {
				log.Fatal(err)
			}
			opt.SkipBlock = inj.SkipBlock
		}
		res, err := repro.SolveAsync(a, b, opt)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		return res.History
	}

	clean := run("no failure", 0)
	rec10 := run("recovery-(10)", 10)
	rec30 := run("recovery-(30)", 30)
	none := run("no recovery", -1)

	fmt.Println("relative residual (log10) at selected iterations:")
	fmt.Printf("%-6s %12s %14s %14s %14s\n", "iter", "no failure", "recovery-(10)", "recovery-(30)", "no recovery")
	b0 := clean[0]
	for it := 9; it < *iters; it += 10 {
		fmt.Printf("%-6d %12.2e %14.2e %14.2e %14.2e\n",
			it+1, clean[it]/b0, rec10[it]/b0, rec30[it]/b0, none[it]/b0)
	}

	last := *iters - 1
	fmt.Printf("\nfinal: clean %.2e | recovery-(10) %.2e | recovery-(30) %.2e | no recovery %.2e\n",
		clean[last], rec10[last], rec30[last], none[last])
	fmt.Println("\nThe recovering runs regain full convergence — the method needs no")
	fmt.Println("checkpointing. Without recovery, the residual stalls: the components of")
	fmt.Println("the dead blocks are never updated again.")
}
