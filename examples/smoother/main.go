// Smoother: the paper's §5 outlook — "the widespread use of component-wise
// relaxation methods as preconditioner or smoother in multigrid". Compares
// V-cycle counts of geometric multigrid on the 2-D Poisson problem with
// damped-Jacobi, Gauss-Seidel and block-asynchronous smoothing, then shows
// async-(k) as a GMRES preconditioner.
//
// Run with:
//
//	go run ./examples/smoother [-grid 63]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	grid := flag.Int("grid", 63, "finest grid side (2^k-1 for full coarsening)")
	flag.Parse()

	a := repro.Poisson2D(*grid, *grid)
	b := repro.OnesRHS(a)
	tol := 1e-9
	fmt.Printf("2-D Poisson %dx%d (n=%d), V-cycle to absolute residual %.0e\n\n", *grid, *grid, a.Rows, tol)

	smoothers := []repro.Smoother{
		repro.JacobiSmoother{Sweeps: 2, Omega: 0.8},
		repro.GaussSeidelSmoother{Sweeps: 2},
		&repro.AsyncSmoother{BlockSize: 64, LocalIters: 2, GlobalIters: 1},
	}
	for _, sm := range smoothers {
		mg, err := repro.NewMultigrid(repro.MultigridOptions{
			Width: *grid, Height: *grid, Smoother: sm,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := mg.Solve(b, tol, 100)
		if err != nil {
			log.Fatalf("%s: %v", sm.Name(), err)
		}
		fmt.Printf("%-24s %d levels, %2d cycles, residual %.2e\n",
			sm.Name(), mg.NumLevels(), res.Cycles, res.Residual)
	}

	fmt.Println("\nGMRES(30) on fv1 by preconditioner:")
	tm := repro.GenerateMatrix("fv1")
	fb := repro.OnesRHS(tm.A)
	gtol := 1e-9 * nrm(fb)

	report := func(name string, p repro.SolverPreconditioner) {
		res, err := repro.GMRES(tm.A, fb, 30, p, repro.SolverOptions{MaxIterations: 500, Tolerance: gtol})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-24s %3d iterations (converged=%v)\n", name, res.Iterations, res.Converged)
	}
	report("none", nil)
	jac, err := repro.NewJacobiGMRESPreconditioner(tm.A)
	if err != nil {
		log.Fatal(err)
	}
	report("Jacobi (D^-1)", jac)
	async, err := repro.NewAsyncPreconditioner(tm.A, 448, 2, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	report("async-(2), 2 sweeps", async)
}

func nrm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
