// Poisson2D: the classical model problem for relaxation methods. Solves the
// five-point discrete Poisson equation on a square grid with every solver
// in the library and reports iteration counts plus the modeled wall time on
// the paper's hardware — the micro version of the paper's Figure 9.
//
// Run with:
//
//	go run ./examples/poisson2d [-grid 64] [-tol 1e-8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	grid := flag.Int("grid", 64, "grid side length (n = grid²)")
	tol := flag.Float64("tol", 1e-8, "absolute residual tolerance")
	flag.Parse()

	a := repro.Poisson2D(*grid, *grid)
	b := repro.OnesRHS(a)
	n, nnz := a.Rows, a.NNZ()
	fmt.Printf("2-D Poisson, %dx%d grid: n=%d, nnz=%d, tol=%.0e\n\n", *grid, *grid, n, nnz, *tol)

	model := repro.CalibratedModel()
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\titerations\tresidual\tmodeled time [s]")

	report := func(name string, iters int, residual float64, perIter float64) {
		fmt.Fprintf(w, "%s\t%d\t%.3e\t%.4f\n", name, iters, residual, perIter*float64(iters))
	}

	sOpt := repro.SolverOptions{MaxIterations: 100000, Tolerance: *tol}
	if r, err := repro.Jacobi(a, b, sOpt); err == nil && r.Converged {
		report("Jacobi (GPU model)", r.Iterations, r.Residual, model.JacobiIterTime(n, nnz))
	} else {
		log.Printf("jacobi: converged=%v err=%v", r.Converged, err)
	}
	if r, err := repro.GaussSeidel(a, b, sOpt); err == nil && r.Converged {
		report("Gauss-Seidel (CPU model)", r.Iterations, r.Residual, model.GaussSeidelIterTime(n, nnz))
	} else {
		log.Printf("gauss-seidel: converged=%v err=%v", r.Converged, err)
	}
	if r, err := repro.SOR(a, b, 1.9, sOpt); err == nil && r.Converged {
		report("SOR(1.9) (CPU model)", r.Iterations, r.Residual, model.GaussSeidelIterTime(n, nnz))
	} else {
		log.Printf("sor: converged=%v err=%v", r.Converged, err)
	}
	if r, err := repro.CG(a, b, sOpt); err == nil && r.Converged {
		report("CG (GPU model)", r.Iterations, r.Residual, model.CGIterTime(n, nnz))
	} else {
		log.Printf("cg: converged=%v err=%v", r.Converged, err)
	}

	for _, k := range []int{1, 5} {
		r, err := repro.SolveAsync(a, b, repro.AsyncOptions{
			BlockSize:      256,
			LocalIters:     k,
			MaxGlobalIters: 100000,
			Tolerance:      *tol,
			Seed:           1,
		})
		if err != nil {
			log.Printf("async-(%d): %v", k, err)
			continue
		}
		report(fmt.Sprintf("async-(%d) (GPU model)", k),
			r.GlobalIterations, r.Residual, model.AsyncIterTime(n, nnz, k))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nNote: async-(5) updates every component five times per global iteration;")
	fmt.Println("the extra local sweeps cost <20% per iteration on the modeled hardware.")
}
