package repro

import (
	"context"

	"repro/internal/certify"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpusim"
	"repro/internal/mats"
	"repro/internal/multigpu"
	"repro/internal/multigrid"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/spectral"
	"repro/internal/tune"
	"repro/internal/vecmath"
)

// Sparse-matrix substrate.
type (
	// CSR is a compressed-sparse-row matrix; see sparse.CSR.
	CSR = sparse.CSR
	// COO is the coordinate-format assembly builder; see sparse.COO.
	COO = sparse.COO
	// BlockPartition is a contiguous row partition; see
	// sparse.BlockPartition.
	BlockPartition = sparse.BlockPartition
)

// NewCOO creates an empty coordinate-format builder.
func NewCOO(rows, cols int) *COO { return sparse.NewCOO(rows, cols) }

// NewBlockPartition splits n rows into contiguous blocks.
func NewBlockPartition(n, blockSize int) BlockPartition {
	return sparse.NewBlockPartition(n, blockSize)
}

// ReadMatrixMarket and WriteMatrixMarket expose Matrix Market I/O; Spy and
// SpyPGM render sparsity patterns (ASCII / PGM image).
var (
	ReadMatrixMarket  = sparse.ReadMatrixMarket
	WriteMatrixMarket = sparse.WriteMatrixMarket
	Spy               = sparse.Spy
	SpyPGM            = sparse.SpyPGM
)

// ELL is the ELLPACK (GPU SpMV) matrix format; ToELL converts from CSR.
type ELL = sparse.ELL

// ToELL converts a CSR matrix to the ELLPACK layout.
func ToELL(a *CSR) (*ELL, error) { return sparse.ToELL(a) }

// Test-matrix generators (the paper's Table 1 systems and model problems).
type TestMatrix = mats.TestMatrix

// TestMatrixNames lists the seven paper matrices in Table 1 order.
var TestMatrixNames = mats.Names

// GenerateMatrix builds the named paper matrix; it panics on unknown names
// (use mats.Generate via GenerateMatrixErr for the error form).
func GenerateMatrix(name string) TestMatrix { return mats.MustGenerate(name) }

// GenerateMatrixErr builds the named paper matrix, reporting unknown names
// as an error.
func GenerateMatrixErr(name string) (TestMatrix, error) { return mats.Generate(name) }

// Poisson2D builds the five-point 2-D Poisson model problem.
func Poisson2D(w, h int) *CSR { return mats.Poisson2D(w, h) }

// Trefethen builds the exact n×n Trefethen prime matrix.
func Trefethen(n int) *CSR { return mats.Trefethen(n) }

// OnesRHS returns b = A·1, the paper's right-hand-side convention (the
// exact solution is the ones vector).
func OnesRHS(a *CSR) []float64 {
	b := make([]float64, a.Rows)
	a.MulVec(b, vecmath.Ones(a.Cols))
	return b
}

// The paper's contribution: block-asynchronous relaxation.
type (
	// AsyncOptions configures a block-asynchronous solve; see core.Options.
	AsyncOptions = core.Options
	// AsyncResult reports a block-asynchronous solve; see core.Result.
	AsyncResult = core.Result
	// EngineKind selects the execution engine.
	EngineKind = core.EngineKind
	// FreeRunningOptions configures the barrier-free extension engine.
	FreeRunningOptions = core.FreeRunningOptions
	// FreeRunningResult reports a barrier-free solve.
	FreeRunningResult = core.FreeRunningResult
	// Trace carries Chazan–Miranker update/shift statistics.
	Trace = core.Trace
	// ChaosHooks are engine injection points for adversarial scheduling
	// perturbations (delay / reorder / stale-read); see core.ChaosHooks.
	ChaosHooks = core.ChaosHooks
)

// Schedule record/replay (reproducing non-deterministic runs).
type (
	// Schedule is a captured block-execution schedule; see sched.Schedule.
	Schedule = sched.Schedule
	// ScheduleRecorder captures the executed schedule of a run; attach
	// via AsyncOptions.Record / FreeRunningOptions.Record.
	ScheduleRecorder = sched.Recorder
	// ScheduleEvent is one recorded block execution.
	ScheduleEvent = sched.Event
	// ScheduleMeta describes the captured run.
	ScheduleMeta = sched.Meta
)

var (
	// NewScheduleRecorder creates a recorder (capacity ≤ 0: default).
	NewScheduleRecorder = sched.NewRecorder
	// ReadSchedule restores a schedule persisted with Schedule.WriteJSON.
	ReadSchedule = sched.ReadJSON
)

// Engine selectors.
const (
	// EngineSimulated is the deterministic seeded-chaos engine.
	EngineSimulated = core.EngineSimulated
	// EngineGoroutine is the truly asynchronous worker-pool engine.
	EngineGoroutine = core.EngineGoroutine
)

// SolveAsync runs async-(k) block-asynchronous relaxation on Ax = b.
func SolveAsync(a *CSR, b []float64, opt AsyncOptions) (AsyncResult, error) {
	return core.Solve(a, b, opt)
}

// SolveAsyncCtx is SolveAsync with a context: the solve returns early with
// an error wrapping ErrSolveCanceled (and ctx's own error) once ctx is
// done, checked at every global-iteration boundary.
func SolveAsyncCtx(ctx context.Context, a *CSR, b []float64, opt AsyncOptions) (AsyncResult, error) {
	opt.Ctx = ctx
	return core.Solve(a, b, opt)
}

// AsyncPlan holds the precomputed per-matrix solve state (block partition,
// block views, inverse diagonal, subdomain LU factors); see core.Plan.
// Long-running callers build it once with NewAsyncPlan and amortize the
// setup across many SolveAsyncWithPlan calls — internal/service's plan
// cache is built on exactly this split.
type AsyncPlan = core.Plan

// NewAsyncPlan precomputes the solve setup for the given block size.
func NewAsyncPlan(a *CSR, blockSize int, exactLocal bool) (*AsyncPlan, error) {
	return core.NewPlan(a, blockSize, exactLocal)
}

// SolveAsyncWithPlan runs async-(k) relaxation reusing a prepared plan.
func SolveAsyncWithPlan(p *AsyncPlan, b []float64, opt AsyncOptions) (AsyncResult, error) {
	return core.SolveWithPlan(p, b, opt)
}

// Sentinel errors of the asynchronous engines, re-exported for errors.Is.
var (
	// ErrSolveDiverged marks a non-finite residual (ρ(|B|) > 1 systems).
	ErrSolveDiverged = core.ErrDiverged
	// ErrSolveCanceled marks an early return due to a done context.
	ErrSolveCanceled = core.ErrCanceled
	// ErrSolveNotConverged marks an exhausted iteration budget.
	ErrSolveNotConverged = core.ErrNotConverged
)

// SolveFreeRunning runs the fully asynchronous (barrier-free) extension.
func SolveFreeRunning(a *CSR, b []float64, opt FreeRunningOptions) (FreeRunningResult, error) {
	return core.SolveFreeRunning(a, b, opt)
}

// TuneConfig and TuneResult expose the per-matrix auto-tuner of package
// tune — the paper's "empirically based tuning" (§3.2) automated.
type (
	TuneConfig = tune.Config
	TuneResult = tune.Result
)

// TuneAsync searches (BlockSize, LocalIters, Omega) and returns the
// configuration with the lowest modeled time per digit of residual
// reduction: a short-probe grid over block size and k, then a
// golden-section refinement of ω bracketed by the spectral estimate.
func TuneAsync(a *CSR, b []float64, cfg TuneConfig) (TuneResult, error) {
	return tune.Tune(a, b, cfg)
}

// Synchronous baselines.
type (
	// SolverOptions configures the synchronous solvers; see solver.Options.
	SolverOptions = solver.Options
	// SolverResult reports a synchronous solve; see solver.Result.
	SolverResult = solver.Result
)

// Baseline solvers (see package solver for semantics).
var (
	Jacobi       = solver.Jacobi
	GaussSeidel  = solver.GaussSeidel
	SOR          = solver.SOR
	SSOR         = solver.SSOR
	ScaledJacobi = solver.ScaledJacobi
	CG           = solver.CG
	PCGJacobi    = solver.PCGJacobi
	Residual     = solver.Residual
	// ChebyshevJacobi accelerates the §4.2 spectrum-scaled Jacobi to the
	// square-root rate using the same two eigenvalue bounds.
	ChebyshevJacobi = solver.ChebyshevJacobi
)

// SolverPreconditioner is the preconditioner plug-in of GMRES; package
// core provides the block-asynchronous implementation (paper §5).
type SolverPreconditioner = solver.Preconditioner

// GMRES solves Ax = b with restarted right-preconditioned GMRES(m).
func GMRES(a *CSR, b []float64, restart int, prec SolverPreconditioner, opt SolverOptions) (SolverResult, error) {
	return solver.GMRES(a, b, restart, prec, opt)
}

// NewJacobiGMRESPreconditioner builds the diagonal (Jacobi) preconditioner
// for GMRES.
func NewJacobiGMRESPreconditioner(a *CSR) (SolverPreconditioner, error) {
	return solver.NewJacobiPreconditioner(a)
}

// NewAsyncPreconditioner wraps fixed-seed block-asynchronous sweeps as a
// GMRES preconditioner (paper §5: relaxation as preconditioner).
func NewAsyncPreconditioner(a *CSR, blockSize, k, sweeps int, seed int64) (SolverPreconditioner, error) {
	return core.NewAsyncPreconditioner(a, blockSize, k, sweeps, seed)
}

// Graph reordering (the paper's §4.3 remark on Chem97ZtZ).
var (
	// RCM computes the reverse Cuthill–McKee permutation.
	RCM = sparse.RCM
	// PermuteSym applies a symmetric permutation P·A·Pᵀ.
	PermuteSym = sparse.PermuteSym
	// Bandwidth returns max |i−j| over stored entries.
	Bandwidth = sparse.Bandwidth
)

// Distributed cluster engine (the conclusions' "GPU-accelerated clusters").
type (
	// ClusterOptions configures the bounded-delay distributed solve.
	ClusterOptions = cluster.Options
	// ClusterResult reports a distributed solve.
	ClusterResult = cluster.Result
)

// SolveCluster runs the distributed bounded-delay asynchronous iteration.
func SolveCluster(a *CSR, b []float64, opt ClusterOptions) (ClusterResult, error) {
	return cluster.Solve(a, b, opt)
}

// Silent-error tooling (paper §4.5).
type (
	// SilentCorruptor injects undetected bit flips via
	// AsyncOptions.AfterIteration.
	SilentCorruptor = fault.SilentCorruptor
	// Chaos injects random scheduling perturbations matching ChaosHooks.
	Chaos = fault.Chaos
	// ChaosConfig parameterizes a Chaos injector.
	ChaosConfig = fault.ChaosConfig
	// AnomalyDetector flags convergence delays that reveal silent errors.
	AnomalyDetector = fault.Detector
	// VectorAccess is the iterate view handed to AfterIteration hooks.
	VectorAccess = core.VectorAccess
)

// NewSilentCorruptor and NewAnomalyDetector construct the §4.5 tooling.
var (
	NewSilentCorruptor = fault.NewSilentCorruptor
	// NewChaos validates a ChaosConfig and builds the injector.
	NewChaos           = fault.NewChaos
	NewAnomalyDetector = fault.NewDetector
)

// Admission-time convergence certification (internal/certify): classify a
// matrix, prove or refute asynchronous convergence in bounded work, and
// price an admitted solve with a predicted iteration budget.
type (
	// Certificate is the certifier's output: class, verdict, spectral
	// evidence, and — on a Converges verdict — PredictedIters.
	Certificate = certify.Certificate
	// CertifyOptions bounds the certifier's work (zero value: defaults).
	CertifyOptions = certify.Options
	// CertifyMode selects the in-solve admission gate for
	// AsyncOptions.Certify: CertifyOff, CertifyWarn or CertifyEnforce.
	CertifyMode = certify.Mode
	// CertClass is the certified matrix class (dominance / M-matrix /
	// spectral).
	CertClass = certify.Class
	// CertVerdict is the certified outcome: converges, diverges, unknown.
	CertVerdict = certify.Verdict
)

// Admission-gate modes for AsyncOptions.Certify.
const (
	// CertifyOff skips the pre-flight entirely (the default).
	CertifyOff = certify.ModeOff
	// CertifyWarn certifies and attaches the certificate to the result
	// without ever blocking the solve.
	CertifyWarn = certify.ModeWarn
	// CertifyEnforce refuses matrices certified divergent with an error
	// wrapping ErrCertifiedDivergent before the first iteration.
	CertifyEnforce = certify.ModeEnforce
)

// Certified outcomes (the CertVerdict values).
const (
	// CertUnknown: neither convergence nor divergence proven within the
	// certifier's work bound; never blocks admission.
	CertUnknown = certify.VerdictUnknown
	// CertConverges: every admissible asynchronous schedule converges.
	CertConverges = certify.VerdictConverges
	// CertDiverges: the stationary iteration provably expands.
	CertDiverges = certify.VerdictDiverges
)

// ErrCertifiedDivergent marks an admission refused by CertifyEnforce.
var ErrCertifiedDivergent = certify.ErrDivergent

// Certify runs the admission-time convergence certifier on A.
func Certify(a *CSR, opt CertifyOptions) (Certificate, error) {
	return certify.Certify(a, opt)
}

// ParseCertifyMode parses "off" | "warn" | "enforce" (empty means off).
func ParseCertifyMode(s string) (CertifyMode, error) { return certify.ParseMode(s) }

// ConvergenceReport carries the paper's §2.2/§3.1 pre-flight analysis.
type ConvergenceReport = core.ConvergenceReport

// CheckConvergence evaluates ρ(B), ρ(|B|), diagonal dominance and — for
// ρ(B) ≥ 1 — the §4.2 damping suggestion for the system.
func CheckConvergence(a *CSR, lanczosSteps int, seed int64) (ConvergenceReport, error) {
	return core.CheckConvergence(a, lanczosSteps, seed)
}

// Spectral estimators for the convergence theory.
var (
	// JacobiSpectralRadius estimates ρ(B), B = I − D⁻¹A (Table 1's ρ(M)).
	JacobiSpectralRadius = spectral.JacobiSpectralRadius
	// AbsJacobiSpectralRadius estimates ρ(|B|), the Strikwerda
	// sufficient condition for asynchronous convergence.
	AbsJacobiSpectralRadius = spectral.AbsJacobiSpectralRadius
	// TauScaling returns τ = 2/(λ₁+λ_n) for the §4.2 damped Jacobi.
	TauScaling = spectral.TauScaling
	// ConditionNumber estimates λmax/λmin of an SPD matrix.
	ConditionNumber = spectral.ConditionNumber
)

// Hardware model.
type (
	// PerfModel predicts per-iteration wall times on the paper's hardware.
	PerfModel = gpusim.PerfModel
	// DeviceParams describes a simulated GPU.
	DeviceParams = gpusim.DeviceParams
	// Topology describes a multi-GPU host interconnect.
	Topology = multigpu.Topology
	// Strategy selects a multi-GPU communication scheme (AMC/DC/DK).
	Strategy = multigpu.Strategy
	// MultiGPUResult couples a multi-GPU solve with its modeled time.
	MultiGPUResult = multigpu.Result
)

// Hardware presets and the multi-GPU strategies of paper §3.4.
const (
	AMC = multigpu.AMC
	DC  = multigpu.DC
	DK  = multigpu.DK
)

var (
	// CalibratedModel returns the performance model fitted to the paper's
	// testbed (§3.2).
	CalibratedModel = gpusim.CalibratedModel
	// FermiC2070 returns the paper's GPU parameters.
	FermiC2070 = gpusim.FermiC2070
	// Supermicro returns the paper's 4-GPU host topology.
	Supermicro = multigpu.Supermicro
)

// SolveMultiGPU runs the multi-GPU block-asynchronous iteration of §3.4
// as a live concurrent execution: one shard goroutine per device on the
// core sharded executor, exchanging boundary components through the
// strategy's medium, with the modeled wall time pricing exactly that
// traffic for the topology and device count.
func SolveMultiGPU(a *CSR, b []float64, opt AsyncOptions,
	m PerfModel, topo Topology, strat Strategy, numGPUs int) (MultiGPUResult, error) {
	return multigpu.Solve(a, b, opt, m, topo, strat, numGPUs)
}

// Multigrid (the paper's §5 outlook: component-wise relaxation as a
// smoother).
type (
	// MultigridOptions configures a geometric V-cycle solver.
	MultigridOptions = multigrid.Options
	// MultigridSolver is a geometric multigrid hierarchy for the 2-D
	// Poisson operator with a pluggable smoother.
	MultigridSolver = multigrid.Solver
	// Smoother is the relaxation plug-in interface of the V-cycle.
	Smoother = multigrid.Smoother
	// JacobiSmoother, GaussSeidelSmoother and AsyncSmoother adapt the
	// library's relaxation methods to the Smoother interface.
	JacobiSmoother      = multigrid.JacobiSmoother
	GaussSeidelSmoother = multigrid.GaussSeidelSmoother
	AsyncSmoother       = multigrid.AsyncSmoother
)

// NewMultigrid builds a V-cycle hierarchy; see multigrid.New.
func NewMultigrid(opt MultigridOptions) (*MultigridSolver, error) { return multigrid.New(opt) }

// Fault injection (paper §4.5).
type FaultInjector = fault.Injector

// NewFaultInjector creates an injector killing a fraction of the blocks at
// iteration failAt, with recovery after the given number of iterations
// (negative: never). Plug its SkipBlock method into AsyncOptions.SkipBlock.
func NewFaultInjector(numBlocks int, fraction float64, failAt, recovery int, seed int64) (*FaultInjector, error) {
	return fault.NewInjector(numBlocks, fraction, failAt, recovery, seed)
}
