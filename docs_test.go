package repro_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasPackageDoc asserts the documentation contract that
// cmd/doclint enforces in CI: every Go package in the module — the root
// façade, every internal implementation package, and every command —
// carries a package-level doc comment. A package without one is invisible
// to go doc and to the next reader.
func TestEveryPackageHasPackageDoc(t *testing.T) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("walk found only %d Go package directories; expected the full module", len(dirs))
	}

	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && len(f.Doc.List) > 0 {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("%s: package %s has no package doc comment (add a doc.go)", dir, name)
			}
		}
	}
}
