package repro_test

import (
	"fmt"

	"repro"
)

// The paper's basic workflow: check the convergence theory, then run the
// block-asynchronous iteration.
func Example_quickstart() {
	a := repro.GenerateMatrix("Trefethen_2000").A
	b := repro.OnesRHS(a)

	report, err := repro.CheckConvergence(a, 100, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("async guaranteed: %v\n", report.AsyncGuaranteed)

	res, err := repro.SolveAsync(a, b, repro.AsyncOptions{
		BlockSize:      448,
		LocalIters:     5,
		MaxGlobalIters: 200,
		Tolerance:      1e-10,
		Seed:           1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("converged: %v\n", res.Converged)
	fmt.Printf("x[0] rounds to: %.6f\n", res.X[0])
	// Output:
	// async guaranteed: true
	// converged: true
	// x[0] rounds to: 1.000000
}

// Exact local solves: the k→∞ limit of async-(k).
func ExampleSolveAsync_exactLocal() {
	a := repro.Poisson2D(16, 16)
	b := repro.OnesRHS(a)
	res, err := repro.SolveAsync(a, b, repro.AsyncOptions{
		BlockSize:      256, // one block: a direct solve
		ExactLocal:     true,
		MaxGlobalIters: 5,
		Tolerance:      1e-10,
		Seed:           1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("iterations: %d\n", res.GlobalIterations)
	// Output:
	// iterations: 1
}

// The §4.2 rescue: plain relaxation diverges on s1rmt3m1-class systems;
// the τ-scaled variant converges.
func ExampleTauScaling() {
	a := repro.GenerateMatrix("s1rmt3m1").A
	b := repro.OnesRHS(a)
	tau, err := repro.TauScaling(a, 200, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("tau rounds to: %.2f\n", tau)

	res, err := repro.ScaledJacobi(a, b, tau, repro.SolverOptions{
		MaxIterations: 50, RecordHistory: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("residual shrank: %v\n", res.History[len(res.History)-1] < res.History[0])
	// Output:
	// tau rounds to: 0.55
	// residual shrank: true
}

// Fault tolerance (§4.5): a quarter of the cores die and recover; the
// solve still reaches the solution.
func ExampleNewFaultInjector() {
	a := repro.GenerateMatrix("fv1").A
	b := repro.OnesRHS(a)
	numBlocks := (a.Rows + 127) / 128
	inj, err := repro.NewFaultInjector(numBlocks, 0.25, 10, 20, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := repro.SolveAsync(a, b, repro.AsyncOptions{
		BlockSize:      128,
		LocalIters:     5,
		MaxGlobalIters: 200,
		Tolerance:      1e-9,
		Seed:           1,
		SkipBlock:      inj.SkipBlock,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("converged despite %d dead blocks: %v\n", inj.NumDead(), res.Converged)
	// Output:
	// converged despite 19 dead blocks: true
}

// Parameter auto-tuning (the paper's §3.2 methodology).
func ExampleTuneAsync() {
	a := repro.GenerateMatrix("fv1").A
	b := repro.OnesRHS(a)
	res, err := repro.TuneAsync(a, b, repro.TuneConfig{
		BlockSizes: []int{128, 448},
		LocalIters: []int{1, 5},
		Seed:       1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("local sweeps pay on fv1: %v\n", res.LocalIters > 1)
	// Output:
	// local sweeps pay on fv1: true
}
